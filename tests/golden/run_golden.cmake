# Golden-stdout regression check, run as `cmake -P` from ctest:
#
#   cmake -DBINARY=<figure binary> -DEXPECTED=<committed .stdout>
#         [-DKERNEL=scalar|incremental] [-DTHREADS=N]
#         [-DACTUAL_OUT=<dump path>] -P run_golden.cmake
#
# Runs the binary in quick mode under the requested kernel/thread config
# and byte-compares its stdout against the committed expectation. This is
# the executable form of the engine's central contract: figure/table
# stdout is a pure function of the experiment, identical across thread
# counts, sweep kernels and (absorbed) faults — stderr carries everything
# else. A mismatch dumps the actual bytes next to the build for diffing.
if(NOT DEFINED BINARY OR NOT DEFINED EXPECTED)
  message(FATAL_ERROR "usage: cmake -DBINARY=... -DEXPECTED=... -P run_golden.cmake")
endif()

set(ENV{COSTSENSE_QUICK} "1")
if(DEFINED KERNEL)
  set(ENV{COSTSENSE_KERNEL} "${KERNEL}")
endif()
if(DEFINED THREADS)
  set(ENV{COSTSENSE_THREADS} "${THREADS}")
endif()
# Optionally turn the structured sidecar on: it must not perturb stdout,
# and it must actually get written (checked after the run).
if(DEFINED ARTIFACT_JSON)
  get_filename_component(artifact_dir "${ARTIFACT_JSON}" DIRECTORY)
  file(MAKE_DIRECTORY "${artifact_dir}")
  file(REMOVE "${ARTIFACT_JSON}")
  set(ENV{COSTSENSE_ARTIFACT_JSON} "${ARTIFACT_JSON}")
endif()
# Optionally pick the sidecar sink chain (plain/buffered/compressed). The
# chain shapes the sidecar file only; the byte-compared stdout must not
# move, which is exactly what these entries prove.
if(DEFINED ARTIFACT_CHAIN)
  set(ENV{COSTSENSE_ARTIFACT_CHAIN} "${ARTIFACT_CHAIN}")
endif()

# Optionally turn the persistent oracle-cache snapshot on. The binary runs
# twice from a clean slate: the cold run writes the snapshot, the warm run
# loads it — and BOTH must produce the committed bytes, which is the
# executable form of "a warm cache changes latency, never answers".
if(DEFINED CACHE_PATH)
  get_filename_component(cache_dir "${CACHE_PATH}" DIRECTORY)
  file(MAKE_DIRECTORY "${cache_dir}")
  file(REMOVE "${CACHE_PATH}")
  set(ENV{COSTSENSE_CACHE_PATH} "${CACHE_PATH}")
endif()

execute_process(
  COMMAND "${BINARY}"
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE stderr_text
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BINARY} exited with ${rc}:\n${stderr_text}")
endif()

if(DEFINED ARTIFACT_JSON AND NOT EXISTS "${ARTIFACT_JSON}")
  message(FATAL_ERROR "sidecar ${ARTIFACT_JSON} was not written")
endif()

if(DEFINED CACHE_PATH)
  if(NOT EXISTS "${CACHE_PATH}")
    message(FATAL_ERROR "cache snapshot ${CACHE_PATH} was not written")
  endif()
  execute_process(
    COMMAND "${BINARY}"
    OUTPUT_VARIABLE warm_actual
    ERROR_VARIABLE warm_stderr
    RESULT_VARIABLE warm_rc)
  if(NOT warm_rc EQUAL 0)
    message(FATAL_ERROR "${BINARY} (warm) exited with ${warm_rc}:\n${warm_stderr}")
  endif()
  if(NOT warm_actual STREQUAL actual)
    if(DEFINED ACTUAL_OUT)
      file(WRITE "${ACTUAL_OUT}.warm" "${warm_actual}")
    endif()
    message(FATAL_ERROR
      "warm-cache stdout diverged from the cold run for ${BINARY}\n"
      "the snapshot made the answers drift — that is a correctness bug")
  endif()
endif()

file(READ "${EXPECTED}" expected)
if(actual STREQUAL expected)
  return()
endif()

if(DEFINED ACTUAL_OUT)
  file(WRITE "${ACTUAL_OUT}" "${actual}")
  message(FATAL_ERROR
    "stdout drifted from ${EXPECTED}\n"
    "actual bytes dumped to ${ACTUAL_OUT}\n"
    "if the output changed on purpose, copy the dump over the golden file")
endif()
message(FATAL_ERROR "stdout drifted from ${EXPECTED}")
