#include "linalg/least_squares.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace costsense::linalg {
namespace {

TEST(LeastSquaresTest, ExactSystemRecovered) {
  // With m == n and consistent data, least squares is exact.
  const Matrix c = Matrix::FromRows({Vector{1.0, 0.0}, Vector{0.0, 1.0}});
  const Result<Vector> x = LeastSquares(c, Vector{3.0, 4.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-10);
  EXPECT_NEAR((*x)[1], 4.0, 1e-10);
}

TEST(LeastSquaresTest, OverdeterminedConsistent) {
  const Vector truth{2.0, 5.0, 1.0};
  Rng rng(3);
  std::vector<Vector> rows;
  Vector t(8);
  for (int i = 0; i < 8; ++i) {
    Vector r(3);
    for (int j = 0; j < 3; ++j) r[j] = rng.Uniform(0.1, 10.0);
    t[i] = Dot(r, truth);
    rows.push_back(std::move(r));
  }
  const Result<Vector> x = LeastSquares(Matrix::FromRows(rows), t);
  ASSERT_TRUE(x.ok());
  for (int j = 0; j < 3; ++j) EXPECT_NEAR((*x)[j], truth[j], 1e-8);
}

TEST(LeastSquaresTest, NoisyRecoveryWithinTolerance) {
  // Mimics the paper's setting: observed totals carry small quantization
  // noise; oversampling (m = 2n) keeps the estimate close.
  const Vector truth{100.0, 7.0, 0.5};
  Rng rng(4);
  std::vector<Vector> rows;
  std::vector<double> obs;
  for (int i = 0; i < 12; ++i) {
    Vector r(3);
    for (int j = 0; j < 3; ++j) r[j] = rng.Uniform(0.5, 5.0);
    const double noise = 1.0 + rng.Uniform(-0.001, 0.001);
    obs.push_back(Dot(r, truth) * noise);
    rows.push_back(std::move(r));
  }
  Vector t(obs.size());
  for (size_t i = 0; i < obs.size(); ++i) t[i] = obs[i];
  const Result<Vector> x = LeastSquares(Matrix::FromRows(rows), t);
  ASSERT_TRUE(x.ok());
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR((*x)[j], truth[j], 0.02 * truth[j] + 0.05);
  }
}

TEST(LeastSquaresTest, UnderdeterminedRejected) {
  const Matrix c = Matrix::FromRows({Vector{1.0, 2.0}});
  EXPECT_EQ(LeastSquares(c, Vector{1.0}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LeastSquaresTest, RankDeficientRejected) {
  const Matrix c = Matrix::FromRows(
      {Vector{1.0, 1.0}, Vector{2.0, 2.0}, Vector{3.0, 3.0}});
  EXPECT_FALSE(LeastSquares(c, Vector{1.0, 2.0, 3.0}).ok());
}

TEST(LeastSquaresTest, SizeMismatchRejected) {
  const Matrix c = Matrix::FromRows({Vector{1.0}, Vector{2.0}});
  EXPECT_EQ(LeastSquares(c, Vector{1.0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NonNegativeLeastSquaresTest, ClampsTinyNegatives) {
  // Construct a fit whose exact solution has a tiny negative component by
  // solving for a truth vector with a zero and adding one-sided noise.
  const Matrix c = Matrix::FromRows(
      {Vector{1.0, 1.0}, Vector{1.0, 2.0}, Vector{2.0, 1.0},
       Vector{3.0, 1.0}});
  // Truth (5, 0): totals 5,5,10,15. Perturb slightly.
  const Vector t{5.0, 4.9999, 10.0001, 15.0};
  const Result<Vector> x = NonNegativeLeastSquares(c, t, /*clamp_tol=*/1e-2);
  ASSERT_TRUE(x.ok());
  EXPECT_GE((*x)[1], 0.0);
}

TEST(RelativeResidualTest, PerfectFitIsZero) {
  const Matrix c = Matrix::FromRows({Vector{1.0, 2.0}, Vector{3.0, 4.0}});
  const Vector x{1.0, 1.0};
  EXPECT_DOUBLE_EQ(RelativeResidual(c, x, Vector{3.0, 7.0}), 0.0);
}

TEST(RelativeResidualTest, KnownError) {
  const Matrix c = Matrix::FromRows({Vector{1.0}});
  // Prediction 1.1 vs observation 1.0 -> 10% relative error.
  EXPECT_NEAR(RelativeResidual(c, Vector{1.1}, Vector{1.0}), 0.1, 1e-12);
}

// Property sweep: recovery of random non-negative usage vectors from
// m = 2n samples, the paper's oversampling rule.
class RecoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryTest, RecoversRandomUsageVector) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977 + 13);
  const size_t n = 2 + rng.Index(8);
  Vector truth(n);
  for (size_t j = 0; j < n; ++j) {
    truth[j] = rng.Uniform() < 0.3 ? 0.0 : rng.LogUniform(0.1, 1e6);
  }
  const size_t m = 2 * n;
  std::vector<Vector> rows;
  Vector t(m);
  for (size_t i = 0; i < m; ++i) {
    Vector r(n);
    for (size_t j = 0; j < n; ++j) r[j] = rng.LogUniform(0.01, 100.0);
    t[i] = Dot(r, truth);
    rows.push_back(std::move(r));
  }
  const Result<Vector> x = LeastSquares(Matrix::FromRows(rows), t);
  ASSERT_TRUE(x.ok());
  for (size_t j = 0; j < n; ++j) {
    EXPECT_NEAR((*x)[j], truth[j], 1e-6 * (1.0 + truth[j]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace costsense::linalg
