#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace costsense::linalg {
namespace {

TEST(MatrixTest, IdentityMultiply) {
  const Matrix id = Matrix::Identity(3);
  const Vector x{1.0, 2.0, 3.0};
  EXPECT_EQ(id.Multiply(x), x);
}

TEST(MatrixTest, FromRowsAndRowRoundTrip) {
  const Matrix m = Matrix::FromRows({Vector{1.0, 2.0}, Vector{3.0, 4.0}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.Row(0), (Vector{1.0, 2.0}));
  EXPECT_EQ(m.Row(1), (Vector{3.0, 4.0}));
}

TEST(MatrixTest, Transpose) {
  const Matrix m = Matrix::FromRows({Vector{1.0, 2.0, 3.0}});
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 1u);
  EXPECT_EQ(t(1, 0), 2.0);
}

TEST(MatrixTest, MatrixMultiply) {
  const Matrix a = Matrix::FromRows({Vector{1.0, 2.0}, Vector{3.0, 4.0}});
  const Matrix b = Matrix::FromRows({Vector{5.0, 6.0}, Vector{7.0, 8.0}});
  const Matrix c = a.Multiply(b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(SolveTest, SimpleSystem) {
  // 2x + y = 5 ; x - y = 1  =>  x = 2, y = 1
  const Matrix a = Matrix::FromRows({Vector{2.0, 1.0}, Vector{1.0, -1.0}});
  const Result<Vector> x = SolveLinearSystem(a, Vector{5.0, 1.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-12);
  EXPECT_NEAR((*x)[1], 1.0, 1e-12);
}

TEST(SolveTest, RequiresPivoting) {
  // Leading zero forces a row swap.
  const Matrix a = Matrix::FromRows({Vector{0.0, 1.0}, Vector{1.0, 0.0}});
  const Result<Vector> x = SolveLinearSystem(a, Vector{3.0, 4.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 4.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(SolveTest, SingularDetected) {
  const Matrix a = Matrix::FromRows({Vector{1.0, 2.0}, Vector{2.0, 4.0}});
  const Result<Vector> x = SolveLinearSystem(a, Vector{1.0, 2.0});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SolveTest, NonSquareRejected) {
  const Matrix a = Matrix::FromRows({Vector{1.0, 2.0}});
  EXPECT_EQ(SolveLinearSystem(a, Vector{1.0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(InvertTest, InverseTimesOriginalIsIdentity) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.Index(6);
    Matrix a(n, n);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < n; ++c) a(r, c) = rng.Uniform(-5.0, 5.0);
      a(r, r) += 10.0;  // diagonally dominant => nonsingular
    }
    const Result<Matrix> inv = Invert(a);
    ASSERT_TRUE(inv.ok());
    const Matrix prod = inv->Multiply(a);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < n; ++c) {
        EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-9);
      }
    }
  }
}

TEST(InvertTest, SingularDetected) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 1.0;
  EXPECT_FALSE(Invert(a).ok());
}

// Property sweep: random well-conditioned systems solve to high accuracy.
class RandomSolveTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomSolveTest, SolvesRandomSystem) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t n = 2 + rng.Index(10);
  Matrix a(n, n);
  Vector x_true(n);
  for (size_t r = 0; r < n; ++r) {
    x_true[r] = rng.Uniform(-10.0, 10.0);
    for (size_t c = 0; c < n; ++c) a(r, c) = rng.Uniform(-1.0, 1.0);
    a(r, r) += n;  // keep it well-conditioned
  }
  const Vector b = a.Multiply(x_true);
  const Result<Vector> x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSolveTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace costsense::linalg
