#include "linalg/vector.h"

#include <gtest/gtest.h>

namespace costsense::linalg {
namespace {

TEST(VectorTest, ZeroConstruction) {
  Vector v(3);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 0.0);
  EXPECT_EQ(v[2], 0.0);
}

TEST(VectorTest, FillConstruction) {
  Vector v(4, 2.5);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], 2.5);
}

TEST(VectorTest, InitializerList) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 2.0);
}

TEST(VectorTest, Arithmetic) {
  Vector a{1.0, 2.0};
  Vector b{3.0, 4.0};
  EXPECT_EQ((a + b), (Vector{4.0, 6.0}));
  EXPECT_EQ((b - a), (Vector{2.0, 2.0}));
  EXPECT_EQ((a * 2.0), (Vector{2.0, 4.0}));
  EXPECT_EQ((2.0 * a), (Vector{2.0, 4.0}));
}

TEST(VectorTest, Dot) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
}

TEST(VectorTest, DotOrthogonal) {
  EXPECT_DOUBLE_EQ(Dot(Vector{1.0, 0.0}, Vector{0.0, 7.0}), 0.0);
}

TEST(VectorTest, Hadamard) {
  Vector a{2.0, 3.0};
  Vector b{5.0, 7.0};
  EXPECT_EQ(a.Hadamard(b), (Vector{10.0, 21.0}));
}

TEST(VectorTest, Norms) {
  Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.InfNorm(), 4.0);
}

TEST(VectorTest, SumMaxMin) {
  Vector v{1.0, -2.0, 5.0};
  EXPECT_DOUBLE_EQ(v.Sum(), 4.0);
  EXPECT_DOUBLE_EQ(v.Max(), 5.0);
  EXPECT_DOUBLE_EQ(v.Min(), -2.0);
}

TEST(VectorTest, AllLessEqual) {
  Vector a{1.0, 2.0};
  Vector b{1.0, 3.0};
  EXPECT_TRUE(a.AllLessEqual(b));
  EXPECT_FALSE(b.AllLessEqual(a));
  EXPECT_TRUE(b.AllLessEqual(a, 1.5));
}

TEST(VectorTest, ApproxEqual) {
  Vector a{1.0, 2.0};
  Vector b{1.0 + 1e-12, 2.0};
  EXPECT_TRUE(ApproxEqual(a, b, 1e-9));
  EXPECT_FALSE(ApproxEqual(a, Vector{1.1, 2.0}, 1e-9));
  EXPECT_FALSE(ApproxEqual(a, Vector{1.0}, 1e-9));
}

TEST(VectorTest, ToString) {
  Vector v{1.0, 2.5};
  EXPECT_EQ(v.ToString(), "[1, 2.5]");
}

TEST(VectorDeathTest, MismatchedDotAborts) {
  Vector a{1.0};
  Vector b{1.0, 2.0};
  EXPECT_DEATH((void)Dot(a, b), "CHECK failed");
}

}  // namespace
}  // namespace costsense::linalg
