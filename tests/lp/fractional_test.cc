#include "lp/fractional.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/vector.h"

namespace costsense::lp {
namespace {

using linalg::Vector;

TEST(FractionalTest, PaperExampleOneTightness) {
  // Paper Example 1: A=(1,0), B=(0,1), costs in [1/d, d]^2. The maximum of
  // (A.C)/(B.C) is d^2, achieved at C=(d, 1/d).
  const double d = 10.0;
  const Result<FractionalSolution> sol = MaximizeRatioOverBox(
      Vector{1.0, 0.0}, Vector{0.0, 1.0}, Vector{1.0 / d, 1.0 / d},
      Vector{d, d});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->value, d * d, 1e-6);
  EXPECT_NEAR(sol->x[0], d, 1e-6);
  EXPECT_NEAR(sol->x[1], 1.0 / d, 1e-6);
}

TEST(FractionalTest, IdenticalVectorsGiveOne) {
  const Vector u{2.0, 3.0};
  const Result<FractionalSolution> sol =
      MaximizeRatioOverBox(u, u, Vector{0.5, 0.5}, Vector{2.0, 2.0});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->value, 1.0, 1e-9);
}

TEST(FractionalTest, DegenerateBoxIsPointEvaluation) {
  const Vector a{3.0, 1.0};
  const Vector b{1.0, 1.0};
  const Vector point{2.0, 4.0};
  const Result<FractionalSolution> sol =
      MaximizeRatioOverBox(a, b, point, point);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->value, (3.0 * 2 + 1 * 4) / (2.0 + 4.0), 1e-9);
}

TEST(FractionalTest, RejectsNonPositiveLowerBound) {
  EXPECT_FALSE(MaximizeRatioOverBox(Vector{1.0}, Vector{1.0}, Vector{0.0},
                                    Vector{1.0})
                   .ok());
}

TEST(FractionalTest, RejectsZeroDenominator) {
  EXPECT_FALSE(MaximizeRatioOverBox(Vector{1.0}, Vector{0.0}, Vector{0.5},
                                    Vector{1.0})
                   .ok());
}

TEST(FractionalTest, RejectsDimensionMismatch) {
  EXPECT_FALSE(MaximizeRatioOverBox(Vector{1.0, 2.0}, Vector{1.0},
                                    Vector{0.5}, Vector{1.0})
                   .ok());
}

TEST(FractionalTest, NonComplementaryBoundedByRatioTheorem) {
  // Theorem 2: for strictly positive vectors the ratio never exceeds
  // max_i a_i/b_i regardless of the box.
  const Vector a{4.0, 1.0, 9.0};
  const Vector b{2.0, 1.0, 3.0};  // ratios 2, 1, 3 -> r_max = 3
  const Result<FractionalSolution> sol = MaximizeRatioOverBox(
      a, b, Vector{1e-3, 1e-3, 1e-3}, Vector{1e3, 1e3, 1e3});
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(sol->value, 3.0 + 1e-6);
  EXPECT_GT(sol->value, 2.9);  // the bound is approached as the box widens
}

// Property sweep: the LP optimum matches brute-force vertex enumeration of
// the ratio (Observation 2: linear-fractional maxima sit at vertices).
class RatioSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(RatioSweepTest, MatchesVertexEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 37 + 5);
  const size_t n = 1 + rng.Index(6);
  Vector a(n), b(n), lo(n), hi(n);
  bool b_nonzero = false;
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Uniform() < 0.25 ? 0.0 : rng.LogUniform(0.1, 100.0);
    b[i] = rng.Uniform() < 0.25 ? 0.0 : rng.LogUniform(0.1, 100.0);
    if (b[i] > 0.0) b_nonzero = true;
    lo[i] = rng.LogUniform(0.01, 1.0);
    hi[i] = lo[i] * rng.LogUniform(1.0, 100.0);
  }
  if (!b_nonzero) b[0] = 1.0;

  const Result<FractionalSolution> sol = MaximizeRatioOverBox(a, b, lo, hi);
  ASSERT_TRUE(sol.ok());

  double best = 0.0;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    double num = 0.0, den = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double c = (mask >> i) & 1 ? hi[i] : lo[i];
      num += a[i] * c;
      den += b[i] * c;
    }
    if (den > 0.0) best = std::max(best, num / den);
  }
  EXPECT_NEAR(sol->value, best, 1e-6 * (1.0 + best));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RatioSweepTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace costsense::lp
