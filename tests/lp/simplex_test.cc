#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace costsense::lp {
namespace {

using linalg::Vector;

Problem MakeProblem(size_t n, Vector obj, bool maximize) {
  Problem p;
  p.num_vars = n;
  p.objective = std::move(obj);
  p.maximize = maximize;
  return p;
}

void AddConstraint(Problem& p, Vector coeffs, Relation rel, double rhs) {
  p.constraints.push_back({std::move(coeffs), rel, rhs});
}

TEST(SimplexTest, BasicMaximization) {
  // max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6  =>  x=4, y=0, obj=12.
  Problem p = MakeProblem(2, Vector{3.0, 2.0}, true);
  AddConstraint(p, Vector{1.0, 1.0}, Relation::kLessEqual, 4.0);
  AddConstraint(p, Vector{1.0, 3.0}, Relation::kLessEqual, 6.0);
  const Solution s = Solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective_value, 12.0, 1e-9);
  EXPECT_NEAR(s.x[0], 4.0, 1e-9);
  EXPECT_NEAR(s.x[1], 0.0, 1e-9);
}

TEST(SimplexTest, InteriorOptimum) {
  // max x + y  s.t. x <= 2, y <= 3  =>  (2,3).
  Problem p = MakeProblem(2, Vector{1.0, 1.0}, true);
  AddConstraint(p, Vector{1.0, 0.0}, Relation::kLessEqual, 2.0);
  AddConstraint(p, Vector{0.0, 1.0}, Relation::kLessEqual, 3.0);
  const Solution s = Solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective_value, 5.0, 1e-9);
}

TEST(SimplexTest, Minimization) {
  // min 2x + 3y  s.t. x + y >= 4, x <= 3  =>  x=3, y=1, obj=9.
  Problem p = MakeProblem(2, Vector{2.0, 3.0}, false);
  AddConstraint(p, Vector{1.0, 1.0}, Relation::kGreaterEqual, 4.0);
  AddConstraint(p, Vector{1.0, 0.0}, Relation::kLessEqual, 3.0);
  const Solution s = Solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective_value, 9.0, 1e-9);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
  EXPECT_NEAR(s.x[1], 1.0, 1e-9);
}

TEST(SimplexTest, EqualityConstraint) {
  // max x  s.t. x + y = 5, x <= 3  =>  x=3, y=2.
  Problem p = MakeProblem(2, Vector{1.0, 0.0}, true);
  AddConstraint(p, Vector{1.0, 1.0}, Relation::kEqual, 5.0);
  AddConstraint(p, Vector{1.0, 0.0}, Relation::kLessEqual, 3.0);
  const Solution s = Solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
  EXPECT_NEAR(s.x[1], 2.0, 1e-9);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= 1 and x >= 2 cannot both hold.
  Problem p = MakeProblem(1, Vector{1.0}, true);
  AddConstraint(p, Vector{1.0}, Relation::kLessEqual, 1.0);
  AddConstraint(p, Vector{1.0}, Relation::kGreaterEqual, 2.0);
  EXPECT_EQ(Solve(p).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  Problem p = MakeProblem(1, Vector{1.0}, true);
  AddConstraint(p, Vector{1.0}, Relation::kGreaterEqual, 1.0);
  EXPECT_EQ(Solve(p).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // -x <= -2 means x >= 2; min x => 2.
  Problem p = MakeProblem(1, Vector{1.0}, false);
  AddConstraint(p, Vector{-1.0}, Relation::kLessEqual, -2.0);
  const Solution s = Solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple constraints meeting at the optimum (degeneracy) must not
  // cycle under Bland's rule.
  Problem p = MakeProblem(2, Vector{1.0, 1.0}, true);
  AddConstraint(p, Vector{1.0, 0.0}, Relation::kLessEqual, 1.0);
  AddConstraint(p, Vector{0.0, 1.0}, Relation::kLessEqual, 1.0);
  AddConstraint(p, Vector{1.0, 1.0}, Relation::kLessEqual, 2.0);
  AddConstraint(p, Vector{2.0, 1.0}, Relation::kLessEqual, 3.0);
  const Solution s = Solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective_value, 2.0, 1e-9);
}

TEST(SimplexTest, RedundantEqualityHandled) {
  // Duplicate equality rows leave an artificial basic at zero level.
  Problem p = MakeProblem(2, Vector{1.0, 2.0}, true);
  AddConstraint(p, Vector{1.0, 1.0}, Relation::kEqual, 3.0);
  AddConstraint(p, Vector{2.0, 2.0}, Relation::kEqual, 6.0);
  const Solution s = Solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective_value, 6.0, 1e-9);  // y = 3
}

// Property sweep: LP solutions on random box-constrained problems match
// brute-force vertex enumeration (an optimum of a linear objective over a
// box is at a vertex).
class BoxLpTest : public ::testing::TestWithParam<int> {};

TEST_P(BoxLpTest, MatchesVertexEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 131 + 7);
  const size_t n = 1 + rng.Index(6);
  Vector lo(n), hi(n), obj(n);
  for (size_t i = 0; i < n; ++i) {
    lo[i] = rng.Uniform(0.0, 2.0);
    hi[i] = lo[i] + rng.Uniform(0.1, 5.0);
    obj[i] = rng.Uniform(-3.0, 3.0);
  }
  Problem p = MakeProblem(n, obj, true);
  for (size_t i = 0; i < n; ++i) {
    Vector row(n);
    row[i] = 1.0;
    AddConstraint(p, row, Relation::kLessEqual, hi[i]);
    Vector row2(n);
    row2[i] = 1.0;
    AddConstraint(p, row2, Relation::kGreaterEqual, lo[i]);
  }
  const Solution s = Solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);

  double best = -1e300;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    double v = 0.0;
    for (size_t i = 0; i < n; ++i) {
      v += obj[i] * ((mask >> i) & 1 ? hi[i] : lo[i]);
    }
    best = std::max(best, v);
  }
  EXPECT_NEAR(s.objective_value, best, 1e-7 * (1.0 + std::fabs(best)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxLpTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace costsense::lp
