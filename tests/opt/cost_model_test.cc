// Unit tests of the per-operator cost formulas: where each operator
// charges I/O (which device), how much, and how memory thresholds flip
// spill behaviour. These are the mechanics that create the paper's
// access-path and temp complementary plans.
#include "opt/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "query/builder.h"

namespace costsense::opt {
namespace {

using query::Query;
using query::QueryBuilder;
using storage::LayoutPolicy;
using storage::StorageLayout;

catalog::Catalog MakeCatalog(catalog::SystemConfig config = {}) {
  catalog::Catalog cat(std::move(config));
  const int big = cat.AddTable(catalog::Table(
      "big", 100000, 4096,
      {catalog::MakeColumn("id", 100000, 1, 100000, 4),
       catalog::MakeColumn("grp", 50, 1, 50, 4),
       catalog::MakeColumn("pad", 100000, 0, 0, 100)}));
  const int small = cat.AddTable(catalog::Table(
      "small", 1000, 4096,
      {catalog::MakeColumn("id", 1000, 1, 1000, 4),
       catalog::MakeColumn("pad", 1000, 0, 0, 50)}));
  cat.AddIndex("big_id", big, {0}, true, /*clustered=*/true);
  cat.AddIndex("big_grp", big, {1}, false, /*clustered=*/false);
  cat.AddIndex("small_id", small, {0}, true, false);
  return cat;
}

/// Shared-device split space: dims [seek, transfer, cpu].
struct SplitRig {
  catalog::Catalog cat;
  Query q;
  StorageLayout layout;
  storage::ResourceSpace space;
  CostModel model;

  SplitRig(catalog::Catalog c, Query query)
      : cat(std::move(c)),
        q(std::move(query)),
        layout(LayoutPolicy::kSharedDevice, cat, query::ReferencedTables(q)),
        space(layout.BuildResourceSpace()),
        model(cat, layout, space, q) {}
};

/// Separate-device tied space for temp isolation.
struct TiedRig {
  catalog::Catalog cat;
  Query q;
  StorageLayout layout;
  storage::ResourceSpace space;
  CostModel model;
  size_t temp_dim;

  TiedRig(catalog::Catalog c, Query query)
      : cat(std::move(c)),
        q(std::move(query)),
        layout(LayoutPolicy::kPerTableColocated, cat,
               query::ReferencedTables(q)),
        space(layout.BuildResourceSpace()),
        model(cat, layout, space, q),
        temp_dim(0) {
    for (size_t i = 0; i < space.dim_info().size(); ++i) {
      if (space.dim_info()[i].cls == core::DimClass::kTemp) temp_dim = i;
    }
  }
};

TEST(CostModelTest, SeqScanCharges) {
  catalog::Catalog cat = MakeCatalog();
  Query q = QueryBuilder(cat, "t")
                .Table("big", "b")
                .Restrict("b", "grp", 0.02)
                .Build();
  SplitRig rig(std::move(cat), std::move(q));
  const PlanNodePtr scan = rig.model.SeqScan(0);
  const double pages = rig.cat.table(0).pages();
  EXPECT_DOUBLE_EQ(scan->usage[0], std::max(1.0, pages / 32.0));  // seeks
  EXPECT_DOUBLE_EQ(scan->usage[1], pages);                        // transfer
  EXPECT_DOUBLE_EQ(scan->usage[2], 100000 * (300.0 + 100.0));     // cpu
  EXPECT_DOUBLE_EQ(scan->output_rows, 2000.0);
  EXPECT_TRUE(scan->order.empty());
}

TEST(CostModelTest, UnclusteredIndexScanPaysRandomFetches) {
  catalog::Catalog cat = MakeCatalog();
  Query q = QueryBuilder(cat, "t")
                .Table("big", "b")
                .Restrict("b", "grp", 0.02)
                .Build();
  SplitRig rig(std::move(cat), std::move(q));
  const int grp_index = rig.cat.FindIndexByLeadingColumn(0, 1);
  ASSERT_GE(grp_index, 0);
  const PlanNodePtr ixs = rig.model.IndexScan(0, grp_index, false);
  // Fetches are random: seeks track pages one-for-one and land well
  // below the full table but far above the sequential scan's seek count.
  EXPECT_GT(ixs->usage[0], 100.0);
  EXPECT_LT(ixs->usage[1], rig.cat.table(0).pages());
  // The stream carries the index order.
  ASSERT_FALSE(ixs->order.empty());
  EXPECT_EQ(ixs->order[0].column, 1u);
}

TEST(CostModelTest, ClusteredIndexScanIsMostlySequential) {
  catalog::Catalog cat = MakeCatalog();
  Query q = QueryBuilder(cat, "t")
                .Table("big", "b")
                .Restrict("b", "id", 0.02)
                .Build();
  SplitRig rig(std::move(cat), std::move(q));
  const int id_index = rig.cat.FindIndexByLeadingColumn(0, 0);
  const PlanNodePtr clustered = rig.model.IndexScan(0, id_index, false);
  const int grp_index = rig.cat.FindIndexByLeadingColumn(0, 1);
  // Compare seek-to-transfer balance: the clustered path is sequential.
  const PlanNodePtr unclustered = rig.model.IndexScan(0, grp_index, false);
  EXPECT_LT(clustered->usage[0] / clustered->usage[1],
            unclustered->usage[0] / unclustered->usage[1]);
}

TEST(CostModelTest, IndexOnlySkipsDataPages) {
  catalog::Catalog cat = MakeCatalog();
  // Query touching only the id column, narrow projection: coverable.
  Query q = QueryBuilder(cat, "t")
                .Table("big", "b")
                .Restrict("b", "id", 0.1)
                .Project("b", 0.05)
                .Build();
  SplitRig rig(std::move(cat), std::move(q));
  const int id_index = rig.cat.FindIndexByLeadingColumn(0, 0);
  ASSERT_TRUE(rig.model.IndexCoversRef(0, id_index));
  const PlanNodePtr io = rig.model.IndexScan(0, id_index, true);
  const PlanNodePtr fetch = rig.model.IndexScan(0, id_index, false);
  EXPECT_LT(io->usage[1], fetch->usage[1]);
  EXPECT_LT(io->output_width_bytes, fetch->output_width_bytes);
}

TEST(CostModelTest, WideProjectionBlocksIndexOnly) {
  catalog::Catalog cat = MakeCatalog();
  Query q = QueryBuilder(cat, "t")
                .Table("big", "b")
                .Restrict("b", "id", 0.1)
                .Build();  // default projection: whole row
  SplitRig rig(std::move(cat), std::move(q));
  EXPECT_FALSE(
      rig.model.IndexCoversRef(0, rig.cat.FindIndexByLeadingColumn(0, 0)));
}

TEST(CostModelTest, UsedColumnsCollectsAllRoles) {
  catalog::Catalog cat = MakeCatalog();
  Query q = QueryBuilder(cat, "t")
                .Table("big", "b")
                .Table("small", "s")
                .Restrict("b", "grp", 0.5)
                .Join("b", "id", "s", "id")
                .OrderBy("b", "pad")
                .Build();
  SplitRig rig(std::move(cat), std::move(q));
  const std::vector<size_t> used = rig.model.UsedColumns(0);
  EXPECT_EQ(used.size(), 3u);  // grp (restriction), id (join), pad (order)
}

TEST(CostModelTest, SmallSortStaysInMemory) {
  catalog::Catalog cat = MakeCatalog();
  Query q = QueryBuilder(cat, "t").Table("small", "s").Build();
  TiedRig rig(std::move(cat), std::move(q));
  const PlanNodePtr sorted =
      rig.model.Sort(rig.model.SeqScan(0), {{0, 1}});
  EXPECT_DOUBLE_EQ(sorted->usage[rig.temp_dim], 0.0);
  ASSERT_EQ(sorted->order.size(), 1u);
}

TEST(CostModelTest, BigSortSpillsToTemp) {
  catalog::SystemConfig config;
  config.sort_heap_pages = 10.0;  // force external sort
  catalog::Catalog cat = MakeCatalog(config);
  Query q = QueryBuilder(cat, "t").Table("big", "b").Build();
  TiedRig rig(std::move(cat), std::move(q));
  const PlanNodePtr sorted =
      rig.model.Sort(rig.model.SeqScan(0), {{0, 1}});
  EXPECT_GT(sorted->usage[rig.temp_dim], 0.0);
}

TEST(CostModelTest, SortIsNoOpWhenOrderSatisfied) {
  catalog::Catalog cat = MakeCatalog();
  Query q = QueryBuilder(cat, "t")
                .Table("big", "b")
                .Restrict("b", "id", 0.1)
                .Build();
  SplitRig rig(std::move(cat), std::move(q));
  const PlanNodePtr ixs =
      rig.model.IndexScan(0, rig.cat.FindIndexByLeadingColumn(0, 0), false);
  const PlanNodePtr sorted = rig.model.Sort(ixs, {{0, 0}});
  EXPECT_EQ(sorted.get(), ixs.get());  // same node, no wrapper
}

Query JoinQuery(const catalog::Catalog& cat) {
  return QueryBuilder(cat, "t")
      .Table("big", "b")
      .Table("small", "s")
      .Join("b", "id", "s", "id")
      .Build();
}

TEST(CostModelTest, HashJoinSpillsOnlyWhenBuildExceedsMemory) {
  catalog::SystemConfig small_mem;
  small_mem.buffer_pool_pages = 40.0;  // build side (small: ~18 pages) fits
  {
    catalog::Catalog cat = MakeCatalog(small_mem);
    Query q = JoinQuery(cat);
    TiedRig rig(std::move(cat), std::move(q));
    CostModel::JoinProps props{100000.0, 170.0, 0, 0};
    const PlanNodePtr join = rig.model.HashJoin(
        rig.model.SeqScan(0), rig.model.SeqScan(1), props);
    EXPECT_DOUBLE_EQ(join->usage[rig.temp_dim], 0.0) << "build fits";
    // Swap: big build side (3000+ pages) must spill.
    const PlanNodePtr spilled = rig.model.HashJoin(
        rig.model.SeqScan(1), rig.model.SeqScan(0), props);
    EXPECT_GT(spilled->usage[rig.temp_dim], 0.0);
  }
}

TEST(CostModelTest, IndexNLJoinChargesIndexDevicePerProbe) {
  catalog::Catalog cat = MakeCatalog();
  Query q = QueryBuilder(cat, "t")
                .Table("small", "s")
                .Table("big", "b")
                .Join("s", "id", "b", "id")
                .Build();
  SplitRig rig(std::move(cat), std::move(q));
  const int id_index = rig.cat.FindIndexByLeadingColumn(1, 0);
  CostModel::JoinProps props{1000.0, 170.0, 0, 0};
  const PlanNodePtr outer = rig.model.SeqScan(0);
  const PlanNodePtr join =
      rig.model.IndexNLJoin(outer, 1, id_index, false, props);
  // 1000 probes => at least 1000 extra seeks beyond the outer's.
  EXPECT_GE(join->usage[0], outer->usage[0] + 1000.0);
  // Nested loops preserves outer order (outer is unordered here).
  EXPECT_EQ(join->order, outer->order);
  EXPECT_EQ(join->output_rows, 1000.0);
}

TEST(CostModelTest, BlockNLJoinMaterializesNonLeafInner) {
  catalog::Catalog cat = MakeCatalog();
  Query q = JoinQuery(cat);
  TiedRig rig(std::move(cat), std::move(q));
  CostModel::JoinProps props{100000.0, 170.0, 0, 0};
  // Leaf inner: rescans the base table, no temp.
  const PlanNodePtr leaf_inner = rig.model.BlockNLJoin(
      rig.model.SeqScan(0), rig.model.SeqScan(1), props);
  EXPECT_DOUBLE_EQ(leaf_inner->usage[rig.temp_dim], 0.0);
  // Non-leaf inner (a sort) must materialize to temp.
  const PlanNodePtr sorted_inner = rig.model.Sort(
      rig.model.SeqScan(1), {{1, 1}});
  ASSERT_EQ(sorted_inner->op, OpType::kSort);
  const PlanNodePtr mat = rig.model.BlockNLJoin(
      rig.model.SeqScan(0), sorted_inner, props);
  EXPECT_GT(mat->usage[rig.temp_dim], 0.0);
}

TEST(CostModelTest, SortMergeJoinDeclaresMergeOrder) {
  catalog::Catalog cat = MakeCatalog();
  Query q = JoinQuery(cat);
  SplitRig rig(std::move(cat), std::move(q));
  CostModel::JoinProps props{100000.0, 170.0, 0, 0};
  const PlanNodePtr l = rig.model.Sort(rig.model.SeqScan(0), {{0, 0}});
  const PlanNodePtr r = rig.model.Sort(rig.model.SeqScan(1), {{1, 0}});
  const PlanNodePtr join = rig.model.SortMergeJoin(l, r, props);
  ASSERT_EQ(join->order.size(), 1u);
  EXPECT_EQ(join->order[0].ref, 0u);
  EXPECT_EQ(join->order[0].column, 0u);
}

TEST(CostModelTest, HashAggSpillsWhenGroupsExceedHeap) {
  catalog::SystemConfig config;
  config.sort_heap_pages = 5.0;
  catalog::Catalog cat = MakeCatalog(config);
  Query q = QueryBuilder(cat, "t")
                .Table("big", "b")
                .GroupBy(50000, {"b.id"})
                .Build();
  TiedRig rig(std::move(cat), std::move(q));
  const PlanNodePtr agg = rig.model.Aggregate(rig.model.SeqScan(0), false);
  EXPECT_GT(agg->usage[rig.temp_dim], 0.0);
  EXPECT_DOUBLE_EQ(agg->output_rows, 50000.0);
}

TEST(CostModelTest, ResidualEdgesAddCpu) {
  catalog::Catalog cat = MakeCatalog();
  Query q = JoinQuery(cat);
  SplitRig rig(std::move(cat), std::move(q));
  CostModel::JoinProps base{100000.0, 170.0, 0, 0};
  CostModel::JoinProps residual{100000.0, 170.0, 0, 2};
  const PlanNodePtr j0 = rig.model.HashJoin(rig.model.SeqScan(0),
                                            rig.model.SeqScan(1), base);
  const PlanNodePtr j2 = rig.model.HashJoin(rig.model.SeqScan(0),
                                            rig.model.SeqScan(1), residual);
  EXPECT_GT(j2->usage[2], j0->usage[2]);
  EXPECT_DOUBLE_EQ(j2->usage[0], j0->usage[0]);  // same I/O
}

TEST(CostModelTest, CanonicalIdsDistinguishVariants) {
  catalog::Catalog cat = MakeCatalog();
  Query q = QueryBuilder(cat, "t")
                .Table("big", "b")
                .Restrict("b", "id", 0.1)
                .Project("b", 0.05)
                .Build();
  SplitRig rig(std::move(cat), std::move(q));
  const int id_index = rig.cat.FindIndexByLeadingColumn(0, 0);
  EXPECT_NE(rig.model.IndexScan(0, id_index, true)->id,
            rig.model.IndexScan(0, id_index, false)->id);
  EXPECT_NE(rig.model.SeqScan(0)->id,
            rig.model.IndexScan(0, id_index, false)->id);
}

TEST(PlanTest, OrderSatisfiesPrefixSemantics) {
  const std::vector<query::SortKey> produced = {{0, 1}, {0, 2}};
  EXPECT_TRUE(OrderSatisfies(produced, {}));
  EXPECT_TRUE(OrderSatisfies(produced, {{0, 1}}));
  EXPECT_TRUE(OrderSatisfies(produced, {{0, 1}, {0, 2}}));
  EXPECT_FALSE(OrderSatisfies(produced, {{0, 2}}));
  EXPECT_FALSE(OrderSatisfies(produced, {{0, 1}, {0, 2}, {0, 3}}));
}

TEST(PlanTest, KeysToStringFormat) {
  EXPECT_EQ(KeysToString({{0, 1}, {2, 3}}), "r0.c1,r2.c3");
  EXPECT_EQ(KeysToString({}), "");
}

}  // namespace
}  // namespace costsense::opt
