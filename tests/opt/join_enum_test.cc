// Tests of the dynamic-programming join enumerator: subset cardinality
// consistency (the property the additive framework depends on), semi/anti
// handling, cross products, and the feature toggles used by ablations.
#include "opt/join_enum.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/feasible_region.h"
#include "opt/optimizer.h"
#include "query/builder.h"

namespace costsense::opt {
namespace {

using query::JoinKind;
using query::Query;
using query::QueryBuilder;
using storage::LayoutPolicy;
using storage::StorageLayout;

catalog::Catalog MakeCatalog() {
  catalog::Catalog cat;
  const int a = cat.AddTable(catalog::Table(
      "a", 1e6, 4096,
      {catalog::MakeColumn("id", 1e6, 1, 1e6, 4),
       catalog::MakeColumn("b_id", 1e4, 1, 1e4, 4)}));
  const int b = cat.AddTable(catalog::Table(
      "b", 1e4, 4096,
      {catalog::MakeColumn("id", 1e4, 1, 1e4, 4),
       catalog::MakeColumn("c_id", 100, 1, 100, 4)}));
  const int c = cat.AddTable(catalog::Table(
      "c", 100, 4096, {catalog::MakeColumn("id", 100, 1, 100, 4)}));
  cat.AddIndex("a_pk", a, {0}, true, true);
  cat.AddIndex("a_b", a, {1}, false, false);
  cat.AddIndex("b_pk", b, {0}, true, true);
  cat.AddIndex("c_pk", c, {0}, true, true);
  return cat;
}

struct Rig {
  catalog::Catalog cat;
  Query q;
  StorageLayout layout;
  storage::ResourceSpace space;
  CostModel model;
  OptimizerOptions options;

  Rig(catalog::Catalog c, Query query, OptimizerOptions opts = {})
      : cat(std::move(c)),
        q(std::move(query)),
        layout(LayoutPolicy::kSharedDevice, cat, query::ReferencedTables(q)),
        space(layout.BuildResourceSpace()),
        model(cat, layout, space, q),
        options(opts) {}
};

TEST(JoinEnumTest, SubsetCardinalityChain) {
  catalog::Catalog cat = MakeCatalog();
  Query q = QueryBuilder(cat, "chain")
                .Table("a", "a")
                .Table("b", "b")
                .Table("c", "c")
                .Join("a", "b_id", "b", "id")
                .Join("b", "c_id", "c", "id")
                .Build();
  Rig rig(std::move(cat), std::move(q));
  JoinEnumerator e(rig.model, rig.cat, rig.options);
  // Singletons: filtered base cardinalities.
  EXPECT_DOUBLE_EQ(e.SubsetRows(0b001), 1e6);
  EXPECT_DOUBLE_EQ(e.SubsetRows(0b010), 1e4);
  // a join b on b_id (ndv 1e4 each side: sel 1e-4): 1e6*1e4*1e-4 = 1e6.
  EXPECT_DOUBLE_EQ(e.SubsetRows(0b011), 1e6);
  // plus b join c (sel 1e-2): 1e6 * 100 * 1e-2 = 1e6.
  EXPECT_DOUBLE_EQ(e.SubsetRows(0b111), 1e6);
  // Disconnected pair {a, c}: cross product.
  EXPECT_DOUBLE_EQ(e.SubsetRows(0b101), 1e8);
}

TEST(JoinEnumTest, PlanRowsMatchSubsetRows) {
  // Every full plan must carry the enumerator's shared cardinality.
  catalog::Catalog cat = MakeCatalog();
  Query q = QueryBuilder(cat, "chain")
                .Table("a", "a")
                .Table("b", "b")
                .Table("c", "c")
                .Join("a", "b_id", "b", "id")
                .Join("b", "c_id", "c", "id")
                .Build();
  Rig rig(std::move(cat), std::move(q));
  JoinEnumerator e(rig.model, rig.cat, rig.options);
  const auto best = e.BestPlan(rig.space.BaselineCosts());
  ASSERT_TRUE(best.ok());
  EXPECT_DOUBLE_EQ((*best)->output_rows, e.SubsetRows(0b111));
}

TEST(JoinEnumTest, SemiJoinCardinality) {
  catalog::Catalog cat = MakeCatalog();
  Query q = QueryBuilder(cat, "semi")
                .Table("b", "b")
                .Table("a", "a")
                .Join("b", "id", "a", "b_id", JoinKind::kSemi)
                .Build();
  Rig rig(std::move(cat), std::move(q));
  JoinEnumerator e(rig.model, rig.cat, rig.options);
  // P(match) = min(1, sel * |a|) = min(1, 1e-4 * 1e6) = 1: all b survive.
  EXPECT_DOUBLE_EQ(e.SubsetRows(0b11), 1e4);
}

TEST(JoinEnumTest, AntiJoinWithOverride) {
  catalog::Catalog cat = MakeCatalog();
  Query q = QueryBuilder(cat, "anti")
                .Table("b", "b")
                .Table("a", "a")
                .Join("b", "id", "a", "b_id", JoinKind::kAnti,
                      /*selectivity_override=*/0.5 / 1e6)
                .Build();
  Rig rig(std::move(cat), std::move(q));
  JoinEnumerator e(rig.model, rig.cat, rig.options);
  // P(match) = 0.5 -> half of b survives the anti join.
  EXPECT_NEAR(e.SubsetRows(0b11), 5e3, 1.0);
}

TEST(JoinEnumTest, DisconnectedGraphStillPlans) {
  catalog::Catalog cat = MakeCatalog();
  Query q = QueryBuilder(cat, "cross")
                .Table("b", "b")
                .Table("c", "c")
                .Build();  // no join edge
  Rig rig(std::move(cat), std::move(q));
  JoinEnumerator e(rig.model, rig.cat, rig.options);
  const auto best = e.BestPlan(rig.space.BaselineCosts());
  ASSERT_TRUE(best.ok());
  EXPECT_EQ((*best)->tables, 0b11u);
  EXPECT_DOUBLE_EQ((*best)->output_rows, 1e6);  // 1e4 x 100
}

TEST(JoinEnumTest, EmptyQueryRejected) {
  catalog::Catalog cat = MakeCatalog();
  Query q;
  q.name = "empty";
  // Bypass the rig (no refs to build a layout from).
  const StorageLayout layout(LayoutPolicy::kSharedDevice, cat, {0});
  const storage::ResourceSpace space = layout.BuildResourceSpace();
  const CostModel model(cat, layout, space, q);
  OptimizerOptions options;
  JoinEnumerator e(model, cat, options);
  EXPECT_EQ(e.BestPlan(space.BaselineCosts()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(JoinEnumTest, DisablingJoinMethodsStillFindsPlans) {
  for (int disable = 0; disable < 4; ++disable) {
    catalog::Catalog cat = MakeCatalog();
    Query q = QueryBuilder(cat, "chain")
                  .Table("a", "a")
                  .Table("b", "b")
                  .Join("a", "b_id", "b", "id")
                  .Build();
    OptimizerOptions opts;
    opts.enable_hash_join = disable != 0;
    opts.enable_sort_merge_join = disable != 1;
    opts.enable_index_nl_join = disable != 2;
    opts.enable_block_nl_join = disable != 3;
    Rig rig(std::move(cat), std::move(q), opts);
    JoinEnumerator e(rig.model, rig.cat, rig.options);
    const auto best = e.BestPlan(rig.space.BaselineCosts());
    ASSERT_TRUE(best.ok()) << "disable=" << disable;
  }
}

TEST(JoinEnumTest, RicherPlanSpaceNeverCostsMore) {
  // Enabling more join methods / bushy shapes can only improve (or tie)
  // the estimated optimum.
  catalog::Catalog cat = MakeCatalog();
  Query q = QueryBuilder(cat, "chain")
                .Table("a", "a")
                .Table("b", "b")
                .Table("c", "c")
                .Join("a", "b_id", "b", "id")
                .Join("b", "c_id", "c", "id")
                .Build();
  OptimizerOptions rich;
  OptimizerOptions poor;
  poor.bushy_joins = false;
  poor.enable_index_only = false;
  poor.enable_sort_merge_join = false;

  Rig rig_rich(MakeCatalog(), q, rich);
  Rig rig_poor(MakeCatalog(), q, poor);
  JoinEnumerator e_rich(rig_rich.model, rig_rich.cat, rig_rich.options);
  JoinEnumerator e_poor(rig_poor.model, rig_poor.cat, rig_poor.options);
  const auto c = rig_rich.space.BaselineCosts();
  const auto best_rich = e_rich.BestPlan(c);
  const auto best_poor = e_poor.BestPlan(c);
  ASSERT_TRUE(best_rich.ok() && best_poor.ok());
  EXPECT_LE(core::TotalCost((*best_rich)->usage, c),
            core::TotalCost((*best_poor)->usage, c) * (1 + 1e-12));
}

TEST(JoinEnumTest, SemiJoinRightSideStaysInner) {
  // The subquery side of a semi join must appear as the right input.
  catalog::Catalog cat = MakeCatalog();
  Query q = QueryBuilder(cat, "semi")
                .Table("b", "b")
                .Table("a", "a")
                .Join("b", "id", "a", "b_id", JoinKind::kSemi)
                .Build();
  Rig rig(std::move(cat), std::move(q));
  JoinEnumerator e(rig.model, rig.cat, rig.options);
  const auto best = e.BestPlan(rig.space.BaselineCosts());
  ASSERT_TRUE(best.ok());
  // Find the join node; its right subtree must be ref 1 ("a").
  const PlanNode* n = best->get();
  while (n && !(n->left && n->right)) n = n->left.get();
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->right->tables, 0b10u);
  EXPECT_EQ(n->join_kind, JoinKind::kSemi);
}


TEST(JoinEnumTest, NeverBeatenByHandEnumeratedMenu) {
  // Brute-force cross-check: for a 2-table query, hand-build every plan
  // from a fixed menu (access path x access path x join method, with the
  // sorts SMJ needs) and verify the DP never returns anything costlier
  // than the menu's best, across random cost vectors.
  catalog::Catalog cat = MakeCatalog();
  Query q = QueryBuilder(cat, "chain")
                .Table("a", "a")
                .Table("b", "b")
                .Join("a", "b_id", "b", "id")
                .Build();
  Rig rig(std::move(cat), std::move(q));
  JoinEnumerator e(rig.model, rig.cat, rig.options);

  const CostModel& m = rig.model;
  CostModel::JoinProps props;
  props.output_rows = e.SubsetRows(0b11);
  props.output_width_bytes = 60.0;
  props.edge = 0;

  std::vector<PlanNodePtr> menu;
  std::vector<PlanNodePtr> a_paths = {m.SeqScan(0)};
  const int a_ix = rig.cat.FindIndexByLeadingColumn(0, 1);
  if (a_ix >= 0) a_paths.push_back(m.IndexScan(0, a_ix, false));
  std::vector<PlanNodePtr> b_paths = {m.SeqScan(1)};
  const int b_ix = rig.cat.FindIndexByLeadingColumn(1, 0);
  if (b_ix >= 0) b_paths.push_back(m.IndexScan(1, b_ix, false));

  for (const PlanNodePtr& a : a_paths) {
    for (const PlanNodePtr& b : b_paths) {
      menu.push_back(m.HashJoin(a, b, props));
      menu.push_back(m.HashJoin(b, a, props));
      menu.push_back(m.BlockNLJoin(a, b, props));
      menu.push_back(m.SortMergeJoin(m.Sort(a, {{0, 1}}),
                                     m.Sort(b, {{1, 0}}), props));
    }
    if (b_ix >= 0) {
      menu.push_back(m.IndexNLJoin(a, 1, b_ix, false, props));
    }
  }

  Rng rng(91);
  const core::Box box =
      core::Box::MultiplicativeBand(rig.space.BaselineCosts(), 1000.0);
  for (int trial = 0; trial < 40; ++trial) {
    const core::CostVector c = box.SampleLogUniform(rng);
    const auto best = e.BestPlan(c);
    ASSERT_TRUE(best.ok());
    const double chosen = core::TotalCost((*best)->usage, c);
    for (const PlanNodePtr& candidate : menu) {
      EXPECT_LE(chosen, core::TotalCost(candidate->usage, c) * (1 + 1e-12))
          << "menu plan " << candidate->id << " beats the DP at trial "
          << trial;
    }
  }
}

}  // namespace
}  // namespace costsense::opt
