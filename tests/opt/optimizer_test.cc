#include "opt/optimizer.h"

#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "core/feasible_region.h"
#include "opt/explain.h"
#include "query/builder.h"

namespace costsense::opt {
namespace {

using query::Query;
using query::QueryBuilder;
using storage::LayoutPolicy;
using storage::StorageLayout;

/// Star schema: a 10M-row fact with a selective filter column and two
/// dimensions, all indexed.
catalog::Catalog StarCatalog() {
  catalog::Catalog cat;
  const int fact = cat.AddTable(catalog::Table(
      "fact", 1e7, 4096,
      {catalog::MakeColumn("id", 1e7, 1, 1e7, 4),
       catalog::MakeColumn("d1_id", 1e4, 1, 1e4, 4),
       catalog::MakeColumn("d2_id", 1e3, 1, 1e3, 4),
       catalog::MakeColumn("filter_col", 1e5, 1, 1e5, 4),
       catalog::MakeColumn("payload", 1e7, 0, 0, 80)}));
  const int d1 = cat.AddTable(
      catalog::Table("d1", 1e4, 4096,
                     {catalog::MakeColumn("id", 1e4, 1, 1e4, 4),
                      catalog::MakeColumn("attr", 100, 0, 99, 4),
                      catalog::MakeColumn("pad", 1e4, 0, 0, 60)}));
  const int d2 = cat.AddTable(
      catalog::Table("d2", 1e3, 4096,
                     {catalog::MakeColumn("id", 1e3, 1, 1e3, 4),
                      catalog::MakeColumn("attr", 10, 0, 9, 4),
                      catalog::MakeColumn("pad", 1e3, 0, 0, 60)}));
  cat.AddIndex("fact_pk", fact, {0}, true, true);
  cat.AddIndex("fact_d1", fact, {1}, false, false);
  cat.AddIndex("fact_filter", fact, {3}, false, false);
  cat.AddIndex("d1_pk", d1, {0}, true, true);
  cat.AddIndex("d2_pk", d2, {0}, true, true);
  return cat;
}

struct Rig {
  catalog::Catalog cat;
  StorageLayout layout;
  storage::ResourceSpace space;
  Optimizer optimizer;

  Rig(catalog::Catalog c, const Query& q,
      LayoutPolicy policy = LayoutPolicy::kSharedDevice,
      OptimizerOptions options = {})
      : cat(std::move(c)),
        layout(policy, cat, query::ReferencedTables(q)),
        space(layout.BuildResourceSpace()),
        optimizer(cat, layout, space, options) {}
};

Query FilterQuery(const catalog::Catalog& cat, double sel) {
  return QueryBuilder(cat, "filter")
      .Table("fact", "f")
      .Restrict("f", "filter_col", sel)
      .Build();
}

TEST(OptimizerTest, SelectiveFilterUsesIndex) {
  catalog::Catalog cat = StarCatalog();
  const Query q = FilterQuery(cat, 1e-6);
  Rig rig(std::move(cat), q);
  const Result<Optimized> r = rig.optimizer.OptimizeAtBaseline(q);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->plan->id.find("IXS"), std::string::npos) << r->plan->id;
}

TEST(OptimizerTest, WideFilterUsesScan) {
  catalog::Catalog cat = StarCatalog();
  const Query q = FilterQuery(cat, 0.9);
  Rig rig(std::move(cat), q);
  const Result<Optimized> r = rig.optimizer.OptimizeAtBaseline(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->plan->id, "SCAN(f)");
}

TEST(OptimizerTest, ExpensiveSeeksFlipIndexToScan) {
  // The classic access-path switchover the paper's Figure 5 discussion
  // hinges on: random I/O cost pushes the optimizer from an unclustered
  // index scan to a sequential scan.
  catalog::Catalog cat = StarCatalog();
  const Query q = FilterQuery(cat, 2e-3);
  Rig rig(std::move(cat), q);
  core::CostVector costs = rig.space.BaselineCosts();

  costs[0] = 0.1;  // seeks nearly free
  const Result<Optimized> cheap_seek = rig.optimizer.Optimize(q, costs);
  ASSERT_TRUE(cheap_seek.ok());
  EXPECT_NE(cheap_seek->plan->id.find("IXS"), std::string::npos)
      << cheap_seek->plan->id;

  costs[0] = 1e5;  // seeks ruinous
  const Result<Optimized> dear_seek = rig.optimizer.Optimize(q, costs);
  ASSERT_TRUE(dear_seek.ok());
  EXPECT_EQ(dear_seek->plan->id, "SCAN(f)");
}

TEST(OptimizerTest, TotalCostIsDotProduct) {
  catalog::Catalog cat = StarCatalog();
  const Query q = FilterQuery(cat, 0.01);
  Rig rig(std::move(cat), q);
  Rng rng(3);
  const core::Box box =
      core::Box::MultiplicativeBand(rig.space.BaselineCosts(), 100.0);
  for (int i = 0; i < 20; ++i) {
    const core::CostVector c = box.SampleLogUniform(rng);
    const Result<Optimized> r = rig.optimizer.Optimize(q, c);
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r->total_cost, core::TotalCost(r->plan->usage, c),
                1e-9 * r->total_cost);
  }
}

Query JoinQuery(const catalog::Catalog& cat) {
  return QueryBuilder(cat, "join2")
      .Table("fact", "f")
      .Table("d1", "d")
      .Restrict("d", "attr", 0.01)
      .Join("f", "d1_id", "d", "id")
      .Build();
}

TEST(OptimizerTest, JoinPlanCoversBothTables) {
  catalog::Catalog cat = StarCatalog();
  const Query q = JoinQuery(cat);
  Rig rig(std::move(cat), q);
  const Result<Optimized> r = rig.optimizer.OptimizeAtBaseline(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->plan->tables, 0b11u);
  EXPECT_GT(r->plan->output_rows, 0.0);
}

TEST(OptimizerTest, ChoicesAreOptimalAcrossCostVectors) {
  // Core optimality property: the plan chosen at cost vector v is never
  // beaten at v by a plan the optimizer chose at some other vector w.
  catalog::Catalog cat = StarCatalog();
  const Query q = QueryBuilder(cat, "join3")
                      .Table("fact", "f")
                      .Table("d1", "a")
                      .Table("d2", "b")
                      .Restrict("f", "filter_col", 1e-4)
                      .Restrict("a", "attr", 0.05)
                      .Join("f", "d1_id", "a", "id")
                      .Join("f", "d2_id", "b", "id")
                      .Build();
  Rig rig(std::move(cat), q);
  Rng rng(7);
  const core::Box box =
      core::Box::MultiplicativeBand(rig.space.BaselineCosts(), 1000.0);
  std::vector<core::UsageVector> usages;
  std::vector<core::CostVector> points;
  for (int i = 0; i < 25; ++i) {
    const core::CostVector c = box.SampleLogUniform(rng);
    const Result<Optimized> r = rig.optimizer.Optimize(q, c);
    ASSERT_TRUE(r.ok());
    usages.push_back(r->plan->usage);
    points.push_back(c);
  }
  for (size_t i = 0; i < points.size(); ++i) {
    const double chosen = core::TotalCost(usages[i], points[i]);
    for (size_t j = 0; j < usages.size(); ++j) {
      EXPECT_LE(chosen,
                core::TotalCost(usages[j], points[i]) * (1 + 1e-9))
          << "plan from point " << j << " beats choice at point " << i;
    }
  }
}

TEST(OptimizerTest, DeterministicAcrossRepeatedCalls) {
  catalog::Catalog cat = StarCatalog();
  const Query q = JoinQuery(cat);
  Rig rig(std::move(cat), q);
  const Result<Optimized> a = rig.optimizer.OptimizeAtBaseline(q);
  const Result<Optimized> b = rig.optimizer.OptimizeAtBaseline(q);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->plan->id, b->plan->id);
  EXPECT_DOUBLE_EQ(a->total_cost, b->total_cost);
}

TEST(OptimizerTest, SemiJoinKeepsAtMostOuterRows) {
  catalog::Catalog cat = StarCatalog();
  const Query q = QueryBuilder(cat, "semi")
                      .Table("d1", "d")
                      .Table("fact", "f")
                      .Join("d", "id", "f", "d1_id", query::JoinKind::kSemi)
                      .Build();
  Rig rig(std::move(cat), q);
  const Result<Optimized> r = rig.optimizer.OptimizeAtBaseline(q);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->plan->output_rows, 1e4 * (1 + 1e-9));
}

TEST(OptimizerTest, AntiJoinKeepsFewerThanSemi) {
  catalog::Catalog cat = StarCatalog();
  auto build = [&cat](query::JoinKind kind) {
    return QueryBuilder(cat, "k")
        .Table("d1", "d")
        .Table("fact", "f")
        .LocalSelectivity("f", 1e-4)
        .Join("d", "id", "f", "d1_id", kind)
        .Build();
  };
  const Query semi = build(query::JoinKind::kSemi);
  const Query anti = build(query::JoinKind::kAnti);
  Rig rig_s(StarCatalog(), semi);
  Rig rig_a(StarCatalog(), anti);
  const double semi_rows =
      rig_s.optimizer.OptimizeAtBaseline(semi)->plan->output_rows;
  const double anti_rows =
      rig_a.optimizer.OptimizeAtBaseline(anti)->plan->output_rows;
  EXPECT_NEAR(semi_rows + anti_rows, 1e4, 1.0);
}

TEST(OptimizerTest, OrderByProducesSortedPlan) {
  catalog::Catalog cat = StarCatalog();
  const Query q = QueryBuilder(cat, "sorted")
                      .Table("d1", "d")
                      .OrderBy("d", "attr")
                      .Build();
  Rig rig(std::move(cat), q);
  const Result<Optimized> r = rig.optimizer.OptimizeAtBaseline(q);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->plan->order.empty());
  EXPECT_EQ(r->plan->order[0].column, 1u);
}

TEST(OptimizerTest, InterestingOrderAvoidsRedundantSort) {
  // ORDER BY the primary key of the big table: the clustered index scan
  // already delivers the order, while sort-after-scan would pay a large
  // external sort; no SORT node should appear.
  catalog::Catalog cat = StarCatalog();
  const Query q = QueryBuilder(cat, "pkorder")
                      .Table("fact", "d")
                      .OrderBy("d", "id")
                      .Build();
  Rig rig(std::move(cat), q);
  const Result<Optimized> r = rig.optimizer.OptimizeAtBaseline(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->plan->id.find("SORT"), std::string::npos) << r->plan->id;
}

TEST(OptimizerTest, LeftDeepOnlyWhenBushyDisabled) {
  catalog::Catalog cat = StarCatalog();
  const Query q = QueryBuilder(cat, "j")
                      .Table("fact", "f")
                      .Table("d1", "a")
                      .Table("d2", "b")
                      .Join("f", "d1_id", "a", "id")
                      .Join("f", "d2_id", "b", "id")
                      .Build();
  OptimizerOptions opts;
  opts.bushy_joins = false;
  Rig rig(std::move(cat), q, LayoutPolicy::kSharedDevice, opts);
  const Result<Optimized> r = rig.optimizer.OptimizeAtBaseline(q);
  ASSERT_TRUE(r.ok());
  // Verify every join's right child is a leaf (left-deep shape).
  std::function<void(const PlanNode&)> check = [&](const PlanNode& n) {
    if (n.left && n.right) {
      EXPECT_TRUE(n.right->left == nullptr ||
                  n.right->op == OpType::kIndexScan)
          << Explain(*r->plan, q);
    }
    if (n.left) check(*n.left);
    if (n.right) check(*n.right);
  };
  check(*r->plan);
}

TEST(OptimizerTest, DimensionMismatchRejected) {
  catalog::Catalog cat = StarCatalog();
  const Query q = FilterQuery(cat, 0.5);
  Rig rig(std::move(cat), q);
  EXPECT_FALSE(rig.optimizer.Optimize(q, core::CostVector{1.0}).ok());
}

TEST(OptimizerTest, ExplainRendersTree) {
  catalog::Catalog cat = StarCatalog();
  const Query q = JoinQuery(cat);
  Rig rig(std::move(cat), q);
  const Result<Optimized> r = rig.optimizer.OptimizeAtBaseline(q);
  ASSERT_TRUE(r.ok());
  const std::string text = Explain(*r->plan, q);
  EXPECT_NE(text.find("rows="), std::string::npos);
  const std::string summary =
      ExplainSummary(*r->plan, rig.space, rig.space.BaselineCosts());
  EXPECT_NE(summary.find("total cost"), std::string::npos);
}

}  // namespace
}  // namespace costsense::opt
