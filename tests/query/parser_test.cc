#include "query/parser.h"

#include <gtest/gtest.h>

#include "tpch/schema.h"

namespace costsense::query {
namespace {

const catalog::Catalog& Cat() {
  static const catalog::Catalog* cat =
      new catalog::Catalog(tpch::MakeTpchCatalog(1.0));
  return *cat;
}

TEST(DateTest, EpochIsZero) {
  EXPECT_DOUBLE_EQ(ParseDateLiteral("1992-01-01").value(), 0.0);
  EXPECT_DOUBLE_EQ(ParseDateLiteral("1992-01-02").value(), 1.0);
  EXPECT_DOUBLE_EQ(ParseDateLiteral("1993-01-01").value(), 366.0);  // leap
  EXPECT_DOUBLE_EQ(ParseDateLiteral("1998-08-02").value(), 2405.0);
}

TEST(DateTest, MalformedRejected) {
  EXPECT_FALSE(ParseDateLiteral("1992/01/01").ok());
  EXPECT_FALSE(ParseDateLiteral("not-a-date!").ok());
  EXPECT_FALSE(ParseDateLiteral("1992-13-01").ok());
}

TEST(ParserTest, SimpleSelect) {
  const auto q = ParseSql(Cat(), "SELECT * FROM lineitem l");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->refs.size(), 1u);
  EXPECT_EQ(q->refs[0].alias, "l");
  EXPECT_FALSE(q->aggregation.present);
}

TEST(ParserTest, AliasDefaultsToTableName) {
  const auto q = ParseSql(Cat(), "SELECT * FROM orders WHERE o_orderkey = 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->refs[0].alias, "orders");
  ASSERT_EQ(q->refs[0].restrictions.size(), 1u);
}

TEST(ParserTest, EqualityUsesDistinctCounts) {
  const auto q = ParseSql(
      Cat(), "SELECT * FROM part p WHERE p.p_size = 15");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_NEAR(q->refs[0].restrictions[0].selectivity, 1.0 / 50, 1e-12);
  EXPECT_TRUE(q->refs[0].restrictions[0].sargable);
}

TEST(ParserTest, DateRangeSelectivity) {
  // One year of the ~6.9-year o_orderdate domain: selectivity ~0.152.
  const auto q = ParseSql(Cat(),
                          "SELECT * FROM orders o WHERE o.o_orderdate >= "
                          "DATE '1994-01-01' AND o.o_orderdate < "
                          "DATE '1995-01-01'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->refs[0].restrictions.size(), 2u);
  // Selinger independence multiplies the two half-range selectivities
  // (~0.70 and ~0.46), overestimating the true one-year fraction (0.152)
  // — the standard optimizer behaviour, reproduced deliberately.
  EXPECT_NEAR(q->refs[0].local_selectivity, 0.696 * 0.456, 0.02);
}

TEST(ParserTest, BetweenAndIn) {
  const auto q = ParseSql(Cat(),
                          "SELECT * FROM lineitem l WHERE l.l_quantity "
                          "BETWEEN 10 AND 20 AND l.l_shipmode IN "
                          "('AIR', 'RAIL')");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->refs[0].restrictions.size(), 2u);
  EXPECT_NEAR(q->refs[0].restrictions[0].selectivity, 10.0 / 49, 0.01);
  EXPECT_NEAR(q->refs[0].restrictions[1].selectivity, 2.0 / 7, 1e-9);
}

TEST(ParserTest, LikeSargability) {
  const auto prefix = ParseSql(
      Cat(), "SELECT * FROM part p WHERE p.p_name LIKE 'forest%'");
  ASSERT_TRUE(prefix.ok());
  EXPECT_TRUE(prefix->refs[0].restrictions[0].sargable);
  const auto infix = ParseSql(
      Cat(), "SELECT * FROM part p WHERE p.p_name LIKE '%green%'");
  ASSERT_TRUE(infix.ok());
  EXPECT_FALSE(infix->refs[0].restrictions[0].sargable);
}

TEST(ParserTest, JoinInWhereClause) {
  const auto q = ParseSql(Cat(),
                          "SELECT * FROM customer c, orders o "
                          "WHERE c.c_custkey = o.o_custkey");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->joins.size(), 1u);
  EXPECT_EQ(q->joins[0].left_ref, 0u);
  EXPECT_EQ(q->joins[0].right_ref, 1u);
  EXPECT_EQ(q->joins[0].kind, JoinKind::kInner);
}

TEST(ParserTest, ExplicitJoinSyntax) {
  const auto q = ParseSql(Cat(),
                          "SELECT * FROM customer c JOIN orders o ON "
                          "c.c_custkey = o.o_custkey");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->joins.size(), 1u);
}

TEST(ParserTest, SemiAndAntiJoins) {
  const auto semi = ParseSql(Cat(),
                             "SELECT * FROM orders o SEMI JOIN lineitem l "
                             "ON o.o_orderkey = l.l_orderkey");
  ASSERT_TRUE(semi.ok()) << semi.status().ToString();
  EXPECT_EQ(semi->joins[0].kind, JoinKind::kSemi);

  const auto anti = ParseSql(Cat(),
                             "SELECT * FROM customer c ANTI JOIN orders o "
                             "ON c.c_custkey = o.o_custkey");
  ASSERT_TRUE(anti.ok()) << anti.status().ToString();
  EXPECT_EQ(anti->joins[0].kind, JoinKind::kAnti);
}

TEST(ParserTest, GroupByAndAggregates) {
  const auto q = ParseSql(Cat(),
                          "SELECT l.l_returnflag, SUM(l.l_quantity) "
                          "FROM lineitem l GROUP BY l.l_returnflag, "
                          "l.l_linestatus ORDER BY l.l_returnflag");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->aggregation.present);
  EXPECT_EQ(q->aggregation.group_keys.size(), 2u);
  EXPECT_DOUBLE_EQ(q->aggregation.output_groups, 6.0);  // 3 flags x 2 states
  ASSERT_EQ(q->order_by.size(), 1u);
}

TEST(ParserTest, ScalarAggregateWithoutGroupBy) {
  const auto q = ParseSql(
      Cat(), "SELECT SUM(l_extendedprice) FROM lineitem");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->aggregation.present);
  EXPECT_DOUBLE_EQ(q->aggregation.output_groups, 1.0);
}

TEST(ParserTest, UnqualifiedColumnsResolveAcrossTables) {
  const auto q = ParseSql(Cat(),
                          "SELECT * FROM customer, orders "
                          "WHERE c_custkey = o_custkey AND c_mktsegment = "
                          "'BUILDING'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->joins.size(), 1u);
  EXPECT_EQ(q->refs[0].restrictions.size(), 1u);
}

TEST(ParserTest, TpchQ6Shape) {
  const auto q = ParseSql(Cat(),
                          "SELECT SUM(l_extendedprice * l_discount) "
                          "FROM lineitem WHERE l_shipdate >= DATE "
                          "'1994-01-01' AND l_shipdate < DATE '1995-01-01' "
                          "AND l_discount BETWEEN 0.05 AND 0.07 "
                          "AND l_quantity < 24");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->refs.size(), 1u);
  EXPECT_EQ(q->refs[0].restrictions.size(), 4u);
  EXPECT_TRUE(q->aggregation.present);
  // Combined selectivity lands near the spec's ~2% qualifying fraction.
  EXPECT_GT(q->refs[0].local_selectivity, 0.001);
  EXPECT_LT(q->refs[0].local_selectivity, 0.05);
}

TEST(ParserTest, ErrorsAreStatusesNotCrashes) {
  EXPECT_FALSE(ParseSql(Cat(), "").ok());
  EXPECT_FALSE(ParseSql(Cat(), "SELECT * FROM no_such_table").ok());
  EXPECT_FALSE(ParseSql(Cat(), "SELECT * FROM part WHERE nope = 1").ok());
  EXPECT_FALSE(ParseSql(Cat(), "SELECT * FROM part p, part p").ok());
  EXPECT_FALSE(
      ParseSql(Cat(), "SELECT * FROM part WHERE p_size = ").ok());
  EXPECT_FALSE(ParseSql(Cat(), "SELECT * FROM part WHERE p_size ! 3").ok());
  EXPECT_FALSE(
      ParseSql(Cat(), "SELECT * FROM part WHERE p_name LIKE unquoted").ok());
  EXPECT_FALSE(ParseSql(Cat(), "SELECT * FROM part GROUP p_size").ok());
  EXPECT_FALSE(
      ParseSql(Cat(), "SELECT * FROM part p WHERE p.p_size = 1 extra").ok());
  EXPECT_FALSE(ParseSql(Cat(), "SELECT * FROM part WHERE 'stray").ok());
}

TEST(ParserTest, ParsedQueryOptimizes) {
  // End-to-end: SQL -> IR -> plan.
  const auto q = ParseSql(Cat(),
                          "SELECT SUM(l_extendedprice) FROM lineitem l, "
                          "part p WHERE l.l_partkey = p.p_partkey AND "
                          "p.p_brand = 'Brand#23'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->joins.size(), 1u);
  EXPECT_NEAR(q->refs[1].local_selectivity, 1.0 / 25, 1e-9);
}

}  // namespace
}  // namespace costsense::query
