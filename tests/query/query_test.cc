#include "query/builder.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace costsense::query {
namespace {

catalog::Catalog TinyCatalog() {
  catalog::Catalog cat;
  cat.AddTable(catalog::Table(
      "fact", 1e6, 4096,
      {catalog::MakeColumn("id", 1e6, 1, 1e6, 4),
       catalog::MakeColumn("dim_id", 1e4, 1, 1e4, 4),
       catalog::MakeColumn("val", 100, 0, 99, 8)}));
  cat.AddTable(catalog::Table("dim", 1e4, 4096,
                              {catalog::MakeColumn("id", 1e4, 1, 1e4, 4),
                               catalog::MakeColumn("name", 1e4, 0, 0, 30)}));
  return cat;
}

TEST(BuilderTest, BuildsJoinGraph) {
  const catalog::Catalog cat = TinyCatalog();
  const Query q = QueryBuilder(cat, "test")
                      .Table("fact", "f")
                      .Table("dim", "d")
                      .Restrict("f", "val", 0.01)
                      .Join("f", "dim_id", "d", "id")
                      .GroupBy(100, {"d.name"})
                      .OrderBy("d", "name")
                      .Build();
  EXPECT_EQ(q.name, "test");
  ASSERT_EQ(q.refs.size(), 2u);
  EXPECT_EQ(q.refs[0].alias, "f");
  EXPECT_DOUBLE_EQ(q.refs[0].local_selectivity, 0.01);
  ASSERT_EQ(q.refs[0].restrictions.size(), 1u);
  EXPECT_EQ(q.refs[0].restrictions[0].column, 2u);
  ASSERT_EQ(q.joins.size(), 1u);
  EXPECT_EQ(q.joins[0].left_ref, 0u);
  EXPECT_EQ(q.joins[0].right_ref, 1u);
  EXPECT_EQ(q.joins[0].left_column, 1u);
  EXPECT_TRUE(q.aggregation.present);
  EXPECT_DOUBLE_EQ(q.aggregation.output_groups, 100.0);
  ASSERT_EQ(q.order_by.size(), 1u);
  EXPECT_EQ(q.order_by[0].ref, 1u);
}

TEST(BuilderTest, RestrictWithoutFoldKeepsLocalSelectivity) {
  const catalog::Catalog cat = TinyCatalog();
  const Query q = QueryBuilder(cat, "t")
                      .Table("fact", "f")
                      .LocalSelectivity("f", 0.5)
                      .Restrict("f", "val", 0.1, true, /*fold=*/false)
                      .Build();
  EXPECT_DOUBLE_EQ(q.refs[0].local_selectivity, 0.5);
}

TEST(BuilderTest, RestrictFoldsByDefault) {
  const catalog::Catalog cat = TinyCatalog();
  const Query q = QueryBuilder(cat, "t")
                      .Table("fact", "f")
                      .Restrict("f", "val", 0.1)
                      .Restrict("f", "id", 0.5)
                      .Build();
  EXPECT_DOUBLE_EQ(q.refs[0].local_selectivity, 0.05);
}

TEST(BuilderTest, SelfJoinViaTwoAliases) {
  const catalog::Catalog cat = TinyCatalog();
  const Query q = QueryBuilder(cat, "t")
                      .Table("fact", "a")
                      .Table("fact", "b")
                      .Join("a", "id", "b", "dim_id")
                      .Build();
  EXPECT_EQ(q.refs[0].table_id, q.refs[1].table_id);
  EXPECT_EQ(ReferencedTables(q).size(), 1u);
}

TEST(BuilderTest, ReferencedTablesDeduplicates) {
  const catalog::Catalog cat = TinyCatalog();
  const Query q = QueryBuilder(cat, "t")
                      .Table("fact", "f")
                      .Table("dim", "d")
                      .Table("dim", "d2")
                      .Join("f", "dim_id", "d", "id")
                      .Join("f", "dim_id", "d2", "id")
                      .Build();
  EXPECT_EQ(ReferencedTables(q).size(), 2u);
}

TEST(BuilderDeathTest, UnknownTableAborts) {
  const catalog::Catalog cat = TinyCatalog();
  EXPECT_DEATH(QueryBuilder(cat, "t").Table("nope", "n"), "unknown table");
}

TEST(BuilderDeathTest, UnknownColumnAborts) {
  const catalog::Catalog cat = TinyCatalog();
  EXPECT_DEATH(
      QueryBuilder(cat, "t").Table("fact", "f").Restrict("f", "nope", 0.5),
      "unknown column");
}

TEST(BuilderDeathTest, DuplicateAliasAborts) {
  const catalog::Catalog cat = TinyCatalog();
  EXPECT_DEATH(
      QueryBuilder(cat, "t").Table("fact", "f").Table("dim", "f"),
      "duplicate alias");
}

}  // namespace
}  // namespace costsense::query
