// Tests of the crash-safe oracle-cache snapshot store: save/load round
// trips, the corruption matrix (truncation, bit flips, wrong format
// version, wrong catalog, wrong quantization — each a whole-file
// rejection with exactly one typed telemetry counter and never a crash),
// atomic replace on save, CachingOracle export/import semantics, and the
// end-to-end warm-restart equivalence through the serve dispatcher:
// persist, reload, rerun, byte-identical bytes with cache hits.
#include "runtime/cache_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <ios>
#include <string>
#include <vector>

#include "core/vectors.h"
#include "runtime/oracle_cache.h"
#include "runtime/thread_pool.h"
#include "serve/dispatcher.h"
#include "serve/protocol.h"
#include "tests/core/fake_oracle.h"

namespace costsense::runtime {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

size_t RejectionSum(const CacheStoreTelemetry& t) {
  return t.rejected_crc + t.rejected_truncated + t.rejected_version +
         t.rejected_catalog + t.rejected_quantization;
}

OracleCacheEntry MakeEntry(uint64_t k0, const std::string& plan, double cost,
                           bool with_usage) {
  OracleCacheEntry entry;
  entry.key = {k0, k0 + 1, k0 + 2};
  entry.result.plan_id = plan;
  entry.result.total_cost = cost;
  if (with_usage) {
    entry.result.usage = core::UsageVector{1.5, 2.5, cost};
  }
  return entry;
}

CacheStoreOptions Options(const std::string& path, uint64_t catalog_hash = 7,
                          int mantissa_bits = 40) {
  CacheStoreOptions options;
  options.path = path;
  options.catalog_hash = catalog_hash;
  options.mantissa_bits = mantissa_bits;
  return options;
}

/// Writes a two-scope snapshot to `path` and returns its record count.
size_t WriteSnapshot(const std::string& path) {
  CacheStore store(Options(path));
  store.Publish("Q1/shared",
                {MakeEntry(10, "p_idx", 42.5, true),
                 MakeEntry(20, "p_seq", 7.25, false)});
  store.Publish("Q6/colocated", {MakeEntry(30, "p_hash", 1e12, true)});
  const Status saved = store.Save();
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  EXPECT_EQ(store.telemetry().saved, 3u);
  return 3;
}

TEST(CacheStoreTest, MissingFileIsSilentColdStart) {
  CacheStore store(Options("cache_store_test_missing.snap"));
  const CacheStoreTelemetry t = store.telemetry();
  EXPECT_EQ(t.loaded, 0u);
  EXPECT_EQ(RejectionSum(t), 0u);
  EXPECT_FALSE(t.rejected());
  EXPECT_TRUE(store.EntriesFor("Q1/shared").empty());
}

TEST(CacheStoreTest, SaveLoadRoundTrip) {
  const std::string path = "cache_store_test_roundtrip.snap";
  const size_t records = WriteSnapshot(path);

  CacheStore reloaded(Options(path));
  const CacheStoreTelemetry t = reloaded.telemetry();
  EXPECT_EQ(t.loaded, records);
  EXPECT_EQ(RejectionSum(t), 0u);

  const std::vector<OracleCacheEntry> q1 = reloaded.EntriesFor("Q1/shared");
  ASSERT_EQ(q1.size(), 2u);
  EXPECT_EQ(q1[0].key, (std::vector<uint64_t>{10, 11, 12}));
  EXPECT_EQ(q1[0].result.plan_id, "p_idx");
  EXPECT_EQ(q1[0].result.total_cost, 42.5);
  ASSERT_TRUE(q1[0].result.usage.has_value());
  EXPECT_EQ((*q1[0].result.usage)[2], 42.5);
  EXPECT_FALSE(q1[1].result.usage.has_value());

  const std::vector<OracleCacheEntry> q6 = reloaded.EntriesFor("Q6/colocated");
  ASSERT_EQ(q6.size(), 1u);
  EXPECT_EQ(q6[0].result.total_cost, 1e12);
  EXPECT_TRUE(reloaded.EntriesFor("Q9/shared").empty());
}

TEST(CacheStoreTest, UnpublishedScopesSurviveSave) {
  const std::string path = "cache_store_test_carry.snap";
  WriteSnapshot(path);

  // A run that only touches Q1 must still carry Q6's warmth forward.
  CacheStore store(Options(path));
  store.Publish("Q1/shared", {MakeEntry(99, "p_new", 3.5, false)});
  ASSERT_TRUE(store.Save().ok());

  CacheStore reloaded(Options(path));
  ASSERT_EQ(reloaded.EntriesFor("Q1/shared").size(), 1u);
  EXPECT_EQ(reloaded.EntriesFor("Q1/shared")[0].result.plan_id, "p_new");
  EXPECT_EQ(reloaded.EntriesFor("Q6/colocated").size(), 1u);
}

// ---------------------------------------------------------------------------
// The corruption matrix: every corruption is a whole-file rejection with
// exactly one typed counter — never a crash, never a partial load.
// ---------------------------------------------------------------------------

void ExpectWholeFileRejection(const CacheStore& store,
                              size_t CacheStoreTelemetry::*counter) {
  const CacheStoreTelemetry t = store.telemetry();
  EXPECT_EQ(t.loaded, 0u);
  EXPECT_EQ(t.*counter, 1u);
  EXPECT_EQ(RejectionSum(t), 1u) << "exactly one rejection cause";
  EXPECT_TRUE(t.rejected());
  EXPECT_TRUE(store.EntriesFor("Q1/shared").empty());
  EXPECT_TRUE(store.EntriesFor("Q6/colocated").empty());
}

TEST(CacheStoreCorruptionTest, TruncatedFileRejectsWholeSnapshot) {
  const std::string path = "cache_store_test_truncated.snap";
  WriteSnapshot(path);
  const std::string bytes = ReadFile(path);
  // Cut mid-record: the store must refuse everything, including the
  // records before the cut.
  WriteFile(path, bytes.substr(0, bytes.size() - 5));

  CacheStore store(Options(path));
  ExpectWholeFileRejection(store, &CacheStoreTelemetry::rejected_truncated);
}

TEST(CacheStoreCorruptionTest, TrailingGarbageRejectsAsTruncation) {
  const std::string path = "cache_store_test_trailing.snap";
  WriteSnapshot(path);
  WriteFile(path, ReadFile(path) + "junk");

  CacheStore store(Options(path));
  ExpectWholeFileRejection(store, &CacheStoreTelemetry::rejected_truncated);
}

TEST(CacheStoreCorruptionTest, BitFlippedRecordRejectsOnCrc) {
  const std::string path = "cache_store_test_bitflip.snap";
  WriteSnapshot(path);
  std::string bytes = ReadFile(path);
  // The last byte belongs to the last record's body; flipping one bit
  // must break that record's CRC and cold-start the whole snapshot.
  bytes.back() = static_cast<char>(static_cast<uint8_t>(bytes.back()) ^ 0x01);
  WriteFile(path, bytes);

  CacheStore store(Options(path));
  ExpectWholeFileRejection(store, &CacheStoreTelemetry::rejected_crc);
}

TEST(CacheStoreCorruptionTest, WrongMagicAndVersionReject) {
  const std::string path = "cache_store_test_version.snap";
  WriteSnapshot(path);
  const std::string good = ReadFile(path);

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  WriteFile(path, bad_magic);
  {
    CacheStore store(Options(path));
    ExpectWholeFileRejection(store, &CacheStoreTelemetry::rejected_version);
  }

  std::string bad_version = good;
  bad_version[7] = 99;  // low byte of the u32 format version
  WriteFile(path, bad_version);
  {
    CacheStore store(Options(path));
    ExpectWholeFileRejection(store, &CacheStoreTelemetry::rejected_version);
  }
}

TEST(CacheStoreCorruptionTest, ForeignCatalogRejected) {
  const std::string path = "cache_store_test_catalog.snap";
  WriteSnapshot(path);  // catalog_hash = 7
  CacheStore store(Options(path, /*catalog_hash=*/8));
  ExpectWholeFileRejection(store, &CacheStoreTelemetry::rejected_catalog);
}

TEST(CacheStoreCorruptionTest, QuantizationMismatchRejected) {
  const std::string path = "cache_store_test_quant.snap";
  WriteSnapshot(path);  // mantissa_bits = 40
  CacheStore store(Options(path, /*catalog_hash=*/7, /*mantissa_bits=*/52));
  ExpectWholeFileRejection(store, &CacheStoreTelemetry::rejected_quantization);
}

TEST(CacheStoreTest, SaveReplacesAtomicallyAndCleansTmp) {
  const std::string path = "cache_store_test_atomic.snap";
  WriteSnapshot(path);
  const std::string first = ReadFile(path);

  CacheStore store(Options(path));
  store.Publish("Q1/shared", {MakeEntry(50, "p_other", 9.0, false)});
  ASSERT_TRUE(store.Save().ok());
  const std::string second = ReadFile(path);
  EXPECT_NE(first, second);
  // The staging file never outlives a successful save.
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
}

TEST(CacheStoreTest, SaveWithoutPathIsTypedError) {
  CacheStore store(Options(""));
  const Status saved = store.Save();
  EXPECT_EQ(saved.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// CachingOracle export/import
// ---------------------------------------------------------------------------

TEST(CachingOracleSnapshotTest, ExportImportRoundTripSkipsExisting) {
  const std::vector<core::PlanUsage> plans = {
      {"a", core::UsageVector{1.0, 10.0}}, {"b", core::UsageVector{10.0, 1.0}}};
  core::FakeOracle base(plans, /*white_box=*/true);
  CachingOracle warmer(base);
  warmer.Optimize({1.0, 1.0});
  warmer.Optimize({5.0, 1.0});
  const std::vector<OracleCacheEntry> snapshot = warmer.Export();
  ASSERT_EQ(snapshot.size(), 2u);
  // Export is key-sorted regardless of shard/probe order.
  EXPECT_LT(snapshot[0].key, snapshot[1].key);

  core::FakeOracle fresh_base(plans, /*white_box=*/true);
  CachingOracle warmed(fresh_base);
  // Compute one of the two points first: import must not overwrite it.
  warmed.Optimize({1.0, 1.0});
  const size_t inserted = warmed.Import(snapshot);
  EXPECT_EQ(inserted, 1u);

  OracleCacheStats stats = warmed.stats();
  EXPECT_EQ(stats.imported, 1u);
  EXPECT_EQ(stats.entries, 2u);
  // Import touches neither hits nor misses...
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);

  // ...and an imported key now serves from memory: no new base call.
  const size_t base_calls = fresh_base.calls();
  const core::OracleResult warm = warmed.Optimize({5.0, 1.0});
  EXPECT_EQ(fresh_base.calls(), base_calls);
  EXPECT_EQ(warmed.stats().hits, 1u);
  // Bit-identical to what the warmer computed for the same point.
  const core::OracleResult original = warmer.Optimize({5.0, 1.0});
  EXPECT_EQ(warm.plan_id, original.plan_id);
  EXPECT_EQ(warm.total_cost, original.total_cost);
}

// ---------------------------------------------------------------------------
// Warm-restart equivalence through the serve dispatcher
// ---------------------------------------------------------------------------

serve::DispatcherOptions QuickDispatcherOptions(runtime::ThreadPool* pool,
                                                const std::string& cache_path) {
  serve::DispatcherOptions options;
  options.discovery.random_samples = 16;
  options.discovery.sampled_vertices = 48;
  options.discovery.bisection_depth = 3;
  options.discovery.completeness_rounds = 1;
  options.pool = pool;
  options.cache_path = cache_path;
  return options;
}

TEST(WarmRestartTest, PersistReloadRerunIsByteIdenticalWithHits) {
  const std::string path = "cache_store_test_warm_restart.snap";
  // Start cold: make sure no stale snapshot from a previous run leaks in.
  WriteFile(path, "");

  runtime::ThreadPool pool(1);
  serve::AnalysisRequest request;
  request.kind = serve::AnalysisKind::kGtcSeries;
  request.query_number = 6;
  request.deltas = {2.0, 10.0, 100.0};

  std::string cold_body;
  {
    serve::Dispatcher cold(QuickDispatcherOptions(&pool, path));
    // The empty file is rejected (truncated header), which is itself a
    // cold start — exercised here on purpose.
    EXPECT_EQ(cold.stats().store.rejected_truncated, 1u);
    const serve::AnalysisResponse response = cold.Handle(request);
    ASSERT_EQ(response.code, StatusCode::kOk) << response.body;
    cold_body = response.body;
    EXPECT_EQ(cold.stats().cache.imported, 0u);
    const Status persisted = cold.PersistCache();
    ASSERT_TRUE(persisted.ok()) << persisted.ToString();
  }

  {
    serve::Dispatcher warm(QuickDispatcherOptions(&pool, path));
    serve::DispatcherStats before = warm.stats();
    EXPECT_GT(before.store.loaded, 0u);
    EXPECT_FALSE(before.store.rejected());

    const serve::AnalysisResponse response = warm.Handle(request);
    ASSERT_EQ(response.code, StatusCode::kOk) << response.body;
    // The headline invariant: warm bytes == cold bytes, with real hits.
    EXPECT_EQ(response.body, cold_body);
    const serve::DispatcherStats after = warm.stats();
    EXPECT_GT(after.cache.imported, 0u);
    EXPECT_GT(after.cache.hits, 0u);
  }
}

TEST(WarmRestartTest, CorruptSnapshotDegradesToColdSameBytes) {
  const std::string path = "cache_store_test_corrupt_warm.snap";
  runtime::ThreadPool pool(1);
  serve::AnalysisRequest request;
  request.kind = serve::AnalysisKind::kDiscovery;
  request.query_number = 1;
  request.deltas = {100.0};

  // Reference run with no persistence at all.
  std::string reference_body;
  {
    serve::Dispatcher bare(QuickDispatcherOptions(&pool, ""));
    const serve::AnalysisResponse response = bare.Handle(request);
    ASSERT_EQ(response.code, StatusCode::kOk) << response.body;
    reference_body = response.body;
  }

  // Produce a valid snapshot, then flip a bit in it.
  {
    serve::Dispatcher writer(QuickDispatcherOptions(&pool, path));
    ASSERT_EQ(writer.Handle(request).code, StatusCode::kOk);
    ASSERT_TRUE(writer.PersistCache().ok());
  }
  std::string bytes = ReadFile(path);
  bytes.back() = static_cast<char>(static_cast<uint8_t>(bytes.back()) ^ 0x10);
  WriteFile(path, bytes);

  // The corrupt snapshot must cold-start with the right typed counter and
  // produce exactly the reference bytes.
  serve::Dispatcher survivor(QuickDispatcherOptions(&pool, path));
  EXPECT_EQ(survivor.stats().store.rejected_crc, 1u);
  EXPECT_EQ(survivor.stats().store.loaded, 0u);
  const serve::AnalysisResponse response = survivor.Handle(request);
  ASSERT_EQ(response.code, StatusCode::kOk) << response.body;
  EXPECT_EQ(response.body, reference_body);
  EXPECT_EQ(survivor.stats().cache.imported, 0u);
}

}  // namespace
}  // namespace costsense::runtime
