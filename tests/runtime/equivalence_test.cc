// The load-bearing determinism guarantee of the parallel runtime: a
// figure run on N threads produces byte-identical output to the serial
// run. Probe points are generated serially and only evaluated
// concurrently, reductions merge in ascending index order, and per-plan
// RNG streams are forked by plan id — so nothing observable depends on
// scheduling.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/worst_case.h"
#include "exp/figure_runner.h"
#include "exp/report.h"
#include "runtime/thread_pool.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

namespace costsense::runtime {
namespace {

const catalog::Catalog& Cat() {
  static const catalog::Catalog* cat =
      new catalog::Catalog(tpch::MakeTpchCatalog(100.0));
  return *cat;
}

struct FigureOutput {
  std::string table;
  std::string csv;
  std::vector<std::string> plan_ids;
};

FigureOutput RunFigure(ThreadPool* pool, storage::LayoutPolicy policy,
                       const std::vector<int>& query_numbers) {
  exp::FigureRunner::Options options;
  options.deltas = {2, 10, 100, 1000};
  options.discovery.random_samples = 12;
  options.discovery.sampled_vertices = 24;
  options.discovery.bisection_depth = 2;
  options.discovery.completeness_rounds = 1;
  options.pool = pool;
  const exp::FigureRunner runner(Cat(), options);

  std::vector<query::Query> queries;
  for (int qn : query_numbers) {
    queries.push_back(tpch::MakeTpchQuery(Cat(), qn));
  }
  const auto analyses = runner.AnalyzeMany(queries, policy);

  FigureOutput out;
  std::vector<exp::FigureSeries> all;
  for (const auto& analysis : analyses) {
    EXPECT_TRUE(analysis.ok()) << analysis.status().ToString();
    if (!analysis.ok()) continue;
    for (const core::PlanUsage& p : analysis->candidate_plans) {
      out.plan_ids.push_back(p.plan_id);
    }
    const auto series = runner.GtcSeries(*analysis);
    EXPECT_TRUE(series.ok());
    if (series.ok()) all.push_back(*series);
  }
  out.table = exp::RenderFigureTable("equivalence", all);
  out.csv = exp::RenderFigureCsv(all);
  return out;
}

TEST(EquivalenceTest, SerialAndParallelFigureOutputsAreIdentical) {
  ThreadPool serial(1);
  ThreadPool parallel(4);
  // One constant-bounded layout and one complementary layout, covering
  // both GtcSeries regimes plus discovery, bisection and extraction.
  for (storage::LayoutPolicy policy :
       {storage::LayoutPolicy::kSharedDevice,
        storage::LayoutPolicy::kPerTableAndIndex}) {
    const std::vector<int> queries = {1, 19};
    const FigureOutput a = RunFigure(&serial, policy, queries);
    const FigureOutput b = RunFigure(&parallel, policy, queries);
    EXPECT_EQ(a.plan_ids, b.plan_ids);
    EXPECT_EQ(a.table, b.table);  // byte-identical, not just numerically close
    EXPECT_EQ(a.csv, b.csv);
  }
}

TEST(EquivalenceTest, EveryKernelAndPoolProducesIdenticalFigureBytes) {
  // The full kernel x threads matrix over a real figure pipeline: the
  // scalar, incremental and simd sweep kernels must render byte-identical
  // tables and CSVs, serial and pooled. This is the determinism claim the
  // golden suite samples — here it is asserted pairwise in-process.
  // (On hosts without AVX2 the simd column degrades to incremental, which
  // only makes the assertion weaker, never flaky.)
  const core::SweepKernel saved = core::DefaultSweepKernel();
  ThreadPool serial(1);
  ThreadPool parallel(3);
  const std::vector<int> queries = {19};

  core::SetDefaultSweepKernel(core::SweepKernel::kScalar);
  const FigureOutput want =
      RunFigure(&serial, storage::LayoutPolicy::kSharedDevice, queries);
  for (core::SweepKernel kernel :
       {core::SweepKernel::kScalar, core::SweepKernel::kIncremental,
        core::SweepKernel::kSimd}) {
    core::SetDefaultSweepKernel(kernel);
    for (ThreadPool* pool : {&serial, &parallel}) {
      const FigureOutput got =
          RunFigure(pool, storage::LayoutPolicy::kSharedDevice, queries);
      EXPECT_EQ(want.plan_ids, got.plan_ids);
      EXPECT_EQ(want.table, got.table);
      EXPECT_EQ(want.csv, got.csv);
    }
  }
  core::SetDefaultSweepKernel(saved);
}

TEST(EquivalenceTest, RepeatedParallelRunsAreIdentical) {
  // Determinism also holds run-to-run on the same pool: scheduling noise
  // must not leak into results.
  ThreadPool pool(4);
  const std::vector<int> queries = {19};
  const FigureOutput a =
      RunFigure(&pool, storage::LayoutPolicy::kPerTableAndIndex, queries);
  const FigureOutput b =
      RunFigure(&pool, storage::LayoutPolicy::kPerTableAndIndex, queries);
  EXPECT_EQ(a.plan_ids, b.plan_ids);
  EXPECT_EQ(a.table, b.table);
  EXPECT_EQ(a.csv, b.csv);
}

}  // namespace
}  // namespace costsense::runtime
