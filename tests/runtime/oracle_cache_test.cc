// Tests of the sharded memoizing oracle cache: hit/miss accounting,
// quantized-key merging, the bounded-eviction guarantee, LRU recency, and
// correctness under concurrent hammering from a thread pool.
#include "runtime/oracle_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "runtime/thread_pool.h"
#include "tests/core/fake_oracle.h"

namespace costsense::runtime {
namespace {

std::vector<core::PlanUsage> TwoPlans() {
  // Plan a is cheap when dim 0 is cheap; plan b when dim 1 is cheap.
  return {{"a", core::UsageVector{1.0, 10.0}},
          {"b", core::UsageVector{10.0, 1.0}}};
}

TEST(QuantizeCostTest, RoundTripsAndMerges) {
  for (double v : {1.0, 3.14159, 1e-12, 7.5e18, 123456.789}) {
    const uint64_t q = QuantizeCost(v, 40);
    const double canonical = DequantizeCost(q, 40);
    // The canonical point is within half an ulp-at-40-bits of v...
    EXPECT_NEAR(canonical, v, v * 1e-11);
    // ...and is a fixed point: quantizing it returns the same key.
    EXPECT_EQ(QuantizeCost(canonical, 40), q);
  }
  // Values differing only by float round-off share a key at 40 bits.
  const double c = 0.1 + 0.2;  // 0.30000000000000004...
  EXPECT_EQ(QuantizeCost(c, 40), QuantizeCost(0.3, 40));
  // Genuinely different values do not.
  EXPECT_NE(QuantizeCost(1.0, 40), QuantizeCost(1.0 + 1e-9, 40));
  // Full mantissa keeps exact doubles distinct.
  EXPECT_NE(QuantizeCost(c, 52), QuantizeCost(0.3, 52));
}

TEST(CachingOracleTest, HitsAndMisses) {
  core::FakeOracle base(TwoPlans(), /*white_box=*/true);
  CachingOracle cache(base);
  EXPECT_EQ(cache.dims(), 2u);

  const core::CostVector p1{1.0, 1.0};
  const core::CostVector p2{5.0, 1.0};
  const auto r1 = cache.Optimize(p1);
  const auto r1_again = cache.Optimize(p1);
  cache.Optimize(p2);
  cache.Optimize(p2);
  cache.Optimize(p1);

  EXPECT_EQ(base.calls(), 2u);  // one per distinct point
  const OracleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 3.0 / 5.0);

  // Cached results are the base oracle's results, usage included.
  EXPECT_EQ(r1.plan_id, r1_again.plan_id);
  EXPECT_EQ(r1.total_cost, r1_again.total_cost);
  ASSERT_TRUE(r1_again.usage.has_value());
}

TEST(CachingOracleTest, QuantizationMergesRoundOffTwins) {
  core::FakeOracle base(TwoPlans(), /*white_box=*/true);
  CachingOracle cache(base);
  const auto r1 = cache.Optimize({0.3, 1.0});
  const auto r2 = cache.Optimize({0.1 + 0.2, 1.0});
  EXPECT_EQ(base.calls(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  // Bit-identical: both callers get the canonical point's result.
  EXPECT_EQ(r1.total_cost, r2.total_cost);
  EXPECT_EQ(r1.plan_id, r2.plan_id);
}

TEST(CachingOracleTest, EvictionKeepsEntriesBounded) {
  core::FakeOracle base(TwoPlans(), /*white_box=*/false);
  OracleCacheOptions options;
  options.shards = 1;
  options.max_entries = 8;
  CachingOracle cache(base, options);
  for (int i = 0; i < 100; ++i) {
    cache.Optimize({1.0 + i, 1.0});
  }
  const OracleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 100u);
  EXPECT_LE(stats.entries, 8u);
  EXPECT_GE(stats.evictions, 92u);
}

TEST(CachingOracleTest, EvictsLeastRecentlyUsed) {
  core::FakeOracle base(TwoPlans(), /*white_box=*/false);
  OracleCacheOptions options;
  options.shards = 1;
  options.max_entries = 2;
  CachingOracle cache(base, options);

  const core::CostVector a{1.0, 1.0}, b{2.0, 1.0}, c{3.0, 1.0};
  cache.Optimize(a);  // miss: {a}
  cache.Optimize(b);  // miss: {a, b}
  cache.Optimize(a);  // hit: a is now most recent
  cache.Optimize(c);  // miss: evicts b, keeps a
  EXPECT_EQ(base.calls(), 3u);

  cache.Optimize(a);  // still cached
  EXPECT_EQ(base.calls(), 3u);
  cache.Optimize(b);  // was evicted: recomputes
  EXPECT_EQ(base.calls(), 4u);
}

TEST(CachingOracleTest, ClearDropsEntriesKeepsCounters) {
  core::FakeOracle base(TwoPlans(), /*white_box=*/false);
  CachingOracle cache(base);
  cache.Optimize({1.0, 1.0});
  cache.Optimize({1.0, 1.0});
  cache.Clear();
  OracleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
  cache.Optimize({1.0, 1.0});
  EXPECT_EQ(base.calls(), 2u);  // recomputed after Clear
}

TEST(CachingOracleTest, ConcurrentHammerIsCorrectAndBounded) {
  // Many threads hit a small point set through every shard; results must
  // match an uncached oracle and the entry bound must hold throughout.
  const auto plans = TwoPlans();
  core::FakeOracle base(plans, /*white_box=*/true);
  core::FakeOracle reference(plans, /*white_box=*/true);
  OracleCacheOptions options;
  options.shards = 4;
  options.max_entries = 64;
  CachingOracle cache(base, options);

  std::vector<core::CostVector> points;
  Rng rng(123);
  for (int i = 0; i < 32; ++i) {
    points.push_back({rng.LogUniform(0.1, 10.0), rng.LogUniform(0.1, 10.0)});
  }

  ThreadPool pool(8);
  const size_t rounds = 2000;
  const Status s = pool.ParallelFor(rounds, [&](size_t i) -> Status {
    const core::CostVector& p = points[i % points.size()];
    const core::OracleResult got = cache.Optimize(p);
    // Compare against the canonical-point result the cache promises.
    core::CostVector canonical(p.size());
    for (size_t d = 0; d < p.size(); ++d) {
      canonical[d] =
          DequantizeCost(QuantizeCost(p[d], options.mantissa_bits),
                         options.mantissa_bits);
    }
    const core::OracleResult want = reference.Optimize(canonical);
    if (got.plan_id != want.plan_id || got.total_cost != want.total_cost) {
      return Status::Internal("cache returned a wrong result");
    }
    return Status::Ok();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();

  const OracleCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, rounds);
  EXPECT_LE(stats.entries, options.max_entries);
  // 32 distinct points over 2000 probes: the cache must absorb nearly
  // everything (racing first-misses may duplicate a handful of computes).
  EXPECT_GT(stats.hit_rate(), 0.9);
  EXPECT_LE(base.calls(), 32u * 8u);
}

}  // namespace
}  // namespace costsense::runtime
