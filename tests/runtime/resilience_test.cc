// The resilience layer's contracts: seeded fault injection is
// deterministic at any thread count and probe order, bounded retry absorbs
// fault bursts byte-identically, exhausted budgets degrade with exact
// accounting (driver-side degraded counts reconcile against the injector's
// own fault log), and checkpointed sweeps resume without re-probing clean
// work.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "core/discovery.h"
#include "core/feasible_region.h"
#include "core/oracle.h"
#include "core/usage_extraction.h"
#include "core/worst_case.h"
#include "runtime/resilience/checkpoint.h"
#include "runtime/resilience/clock.h"
#include "runtime/resilience/fault_injector.h"
#include "runtime/resilience/resilient_oracle.h"
#include "runtime/thread_pool.h"
#include "tests/core/fake_oracle.h"

namespace costsense::runtime::resilience {
namespace {

using core::Box;
using core::CostVector;
using core::FakeOracle;
using core::OracleResult;
using core::PlanUsage;
using core::UsageVector;

std::vector<PlanUsage> MakePlans(size_t dims, size_t count) {
  Rng rng(0x9a5u ^ 42u);
  std::vector<PlanUsage> plans;
  for (size_t p = 0; p < count; ++p) {
    PlanUsage plan;
    plan.plan_id = "plan-" + std::to_string(p);
    plan.usage = UsageVector(dims);
    for (size_t d = 0; d < dims; ++d) {
      plan.usage[d] = rng.Uniform(0.1, 2.0);
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

std::vector<CostVector> MakeProbePoints(const Box& box, size_t count) {
  Rng rng(777);
  std::vector<CostVector> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    points.push_back(box.SampleLogUniform(rng));
  }
  return points;
}

TEST(ManualClockTest, AdvancesOnlyOnSleepOrAdvance) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowNanos(), 100u);
  EXPECT_EQ(clock.NowNanos(), 100u);
  clock.SleepFor(50);
  EXPECT_EQ(clock.NowNanos(), 150u);
  clock.Advance(8);
  EXPECT_EQ(clock.NowNanos(), 158u);
}

TEST(FaultInjectorTest, BurstsAreDeterministicPerKeyAndReplayAfterReset) {
  FakeOracle base(MakePlans(3, 4), /*white_box=*/false);
  FaultInjectionOptions options;
  options.fault_rate = 1.0;  // every key bursts, capped at max_burst
  options.max_burst = 3;
  FaultInjectingOracle injector(base, options);

  const CostVector c = {1.0, 2.0, 3.0};
  std::vector<bool> first;
  for (int i = 0; i < 6; ++i) first.push_back(injector.TryOptimize(c).ok());
  // Exactly the first max_burst attempts fault, every later attempt is
  // clean.
  EXPECT_EQ(first, (std::vector<bool>{false, false, false, true, true, true}));

  injector.Reset();
  std::vector<bool> second;
  for (int i = 0; i < 6; ++i) second.push_back(injector.TryOptimize(c).ok());
  EXPECT_EQ(first, second);
}

TEST(FaultInjectorTest, FaultLogIsIndependentOfOrderAndThreadCount) {
  const Box box = Box::MultiplicativeBand({1.0, 1.0, 1.0}, 100.0);
  const std::vector<CostVector> points = MakeProbePoints(box, 200);

  FakeOracle base(MakePlans(3, 4), /*white_box=*/false);
  FaultInjectionOptions options;
  options.fault_rate = 0.3;
  FaultInjectingOracle injector(base, options);

  for (const CostVector& c : points) (void)injector.TryOptimize(c);
  const FaultLog serial = injector.log();
  EXPECT_GT(serial.faults, 0u);
  EXPECT_EQ(serial.calls, points.size());

  injector.Reset();
  ThreadPool pool(3);
  // Reverse order, concurrent: the log must not notice.
  (void)pool.ParallelFor(points.size(), [&](size_t i) {
    (void)injector.TryOptimize(points[points.size() - 1 - i]);
    return Status::Ok();
  });
  const FaultLog parallel = injector.log();
  EXPECT_EQ(serial.calls, parallel.calls);
  EXPECT_EQ(serial.faults, parallel.faults);
  EXPECT_EQ(serial.transient, parallel.transient);
  EXPECT_EQ(serial.faulty_keys, parallel.faulty_keys);
  EXPECT_EQ(serial.clean_calls, parallel.clean_calls);
}

TEST(FaultInjectorTest, FaultKindsFollowTheConfiguredWeights) {
  FakeOracle base(MakePlans(3, 4), /*white_box=*/false);
  const CostVector c = {1.0, 2.0, 3.0};

  {  // Garbage cost: a reply arrives, but its total cost is non-finite.
    FaultInjectionOptions options;
    options.fault_rate = 1.0;
    options.weight_transient = 0.0;
    options.weight_garbage_cost = 1.0;
    FaultInjectingOracle injector(base, options);
    const Result<OracleResult> r = injector.TryOptimize(c);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(std::isfinite(r->total_cost));
    EXPECT_EQ(injector.log().garbage_cost, 1u);
  }
  {  // Invalid plan id: the reply's plan id is empty (stale handle).
    FaultInjectionOptions options;
    options.fault_rate = 1.0;
    options.weight_transient = 0.0;
    options.weight_invalid_plan = 1.0;
    FaultInjectingOracle injector(base, options);
    const Result<OracleResult> r = injector.TryOptimize(c);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->plan_id.empty());
  }
  {  // Transient: a typed kUnavailable error, no reply at all.
    FaultInjectionOptions options;
    options.fault_rate = 1.0;
    FaultInjectingOracle injector(base, options);
    const Result<OracleResult> r = injector.TryOptimize(c);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  }
  {  // Latency: a clean reply whose service time is charged to the clock.
    ManualClock clock;
    FaultInjectionOptions options;
    options.fault_rate = 1.0;
    options.weight_transient = 0.0;
    options.weight_latency = 1.0;
    options.latency_nanos = 5000;
    FaultInjectingOracle injector(base, options, &clock);
    const Result<OracleResult> r = injector.TryOptimize(c);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->plan_id.empty());
    EXPECT_EQ(clock.NowNanos(), 5000u);
  }
}

TEST(ResilientOracleTest, RetryBudgetAbsorbsBurstsByteIdentically) {
  const Box box = Box::MultiplicativeBand({1.0, 1.0, 1.0}, 100.0);
  const std::vector<CostVector> points = MakeProbePoints(box, 64);
  const std::vector<PlanUsage> plans = MakePlans(3, 4);

  FakeOracle clean(plans, /*white_box=*/false);
  FakeOracle faulted(plans, /*white_box=*/false);
  ManualClock clock;
  FaultInjectionOptions faults;
  faults.fault_rate = 1.0;  // worst case: every key bursts max_burst deep
  faults.max_burst = 3;
  FaultInjectingOracle injector(faulted, faults, &clock);
  ResilientOracleOptions retry;
  retry.max_retries = 5;  // > max_burst, so recovery is guaranteed
  ResilientOracle resilient(injector, retry, &clock);

  for (const CostVector& c : points) {
    const OracleResult want = clean.Optimize(c);
    const Result<OracleResult> got = resilient.TryOptimize(c);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->plan_id, want.plan_id);
    EXPECT_EQ(got->total_cost, want.total_cost);  // bitwise, not approximate
  }
  const ResilienceStats stats = resilient.stats();
  EXPECT_EQ(stats.calls, points.size());
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(stats.recovered, points.size());
  EXPECT_EQ(stats.retries, 3 * points.size());
  EXPECT_GT(stats.backoff_waited_ns, 0u);
}

TEST(ResilientOracleTest, ZeroRetryBudgetSurfacesEveryFaultExactly) {
  const Box box = Box::MultiplicativeBand({1.0, 1.0, 1.0}, 100.0);
  const std::vector<CostVector> points = MakeProbePoints(box, 200);

  FakeOracle base(MakePlans(3, 4), /*white_box=*/false);
  FaultInjectionOptions faults;
  faults.fault_rate = 0.3;
  FaultInjectingOracle injector(base, faults);
  ResilientOracleOptions retry;
  retry.max_retries = 0;
  ResilientOracle resilient(injector, retry);

  for (const CostVector& c : points) (void)resilient.TryOptimize(c);

  // The degraded-accounting identity: with no retries, each injected fault
  // event is exactly one surfaced failure.
  const ResilienceStats stats = resilient.stats();
  const FaultLog log = injector.log();
  EXPECT_GT(log.faults, 0u);
  EXPECT_EQ(stats.failures, log.faults);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.calls, points.size());
}

TEST(ResilientOracleTest, ValidationConvertsGarbageRepliesToTypedErrors) {
  FakeOracle base(MakePlans(3, 4), /*white_box=*/false);
  const CostVector c = {1.0, 2.0, 3.0};

  {
    FaultInjectionOptions faults;
    faults.fault_rate = 1.0;
    faults.weight_transient = 0.0;
    faults.weight_garbage_cost = 1.0;
    FaultInjectingOracle injector(base, faults);
    ResilientOracleOptions retry;
    retry.max_retries = 0;
    ResilientOracle resilient(injector, retry);
    const Result<OracleResult> r = resilient.TryOptimize(c);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInternal);
    EXPECT_NE(r.status().message().find("non-finite"), std::string::npos);
    EXPECT_EQ(resilient.stats().invalid_replies, 1u);
  }
  {
    FaultInjectionOptions faults;
    faults.fault_rate = 1.0;
    faults.weight_transient = 0.0;
    faults.weight_invalid_plan = 1.0;
    FaultInjectingOracle injector(base, faults);
    ResilientOracleOptions retry;
    retry.max_retries = 0;
    ResilientOracle resilient(injector, retry);
    const Result<OracleResult> r = resilient.TryOptimize(c);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInternal);
    EXPECT_NE(r.status().message().find("plan id"), std::string::npos);
  }
}

TEST(ResilientOracleTest, PerCallDeadlineDiscardsSlowRepliesThenRecovers) {
  FakeOracle base(MakePlans(3, 4), /*white_box=*/false);
  ManualClock clock;
  FaultInjectionOptions faults;
  faults.fault_rate = 1.0;
  faults.max_burst = 1;
  faults.weight_transient = 0.0;
  faults.weight_latency = 1.0;
  faults.latency_nanos = 10'000;
  FaultInjectingOracle injector(base, faults, &clock);
  ResilientOracleOptions retry;
  retry.max_retries = 2;
  retry.per_call_deadline_ns = 1000;  // slower replies are discarded
  ResilientOracle resilient(injector, retry, &clock);

  const Result<OracleResult> r = resilient.TryOptimize({1.0, 2.0, 3.0});
  ASSERT_TRUE(r.ok());  // the burst is 1 deep; the retry lands clean
  const ResilienceStats stats = resilient.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.recovered, 1u);
}

TEST(ResilientOracleTest, RunBudgetFailsFastAndResets) {
  FakeOracle base(MakePlans(3, 4), /*white_box=*/false);
  ManualClock clock;
  FaultInjectingOracle injector(base, FaultInjectionOptions{});  // no faults
  ResilientOracleOptions retry;
  retry.run_deadline_ns = 1000;
  ResilientOracle resilient(injector, retry, &clock);

  clock.Advance(5000);  // the sweep's budget is long spent
  const Result<OracleResult> r1 = resilient.TryOptimize({1.0, 2.0, 3.0});
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(resilient.stats().attempts, 0u);  // failed fast, no base call

  resilient.ResetBudget();
  const Result<OracleResult> r2 = resilient.TryOptimize({1.0, 2.0, 3.0});
  EXPECT_TRUE(r2.ok());
}

TEST(ResilientOracleTest, BreakerOpensShortCircuitsAndHalfOpens) {
  FakeOracle base(MakePlans(3, 4), /*white_box=*/false);
  ManualClock clock;
  FaultInjectionOptions faults;
  faults.fault_rate = 1.0;
  faults.max_burst = 1000;  // effectively always faulting
  FaultInjectingOracle injector(base, faults, &clock);
  ResilientOracleOptions retry;
  retry.max_retries = 0;
  retry.breaker_threshold = 2;
  retry.breaker_cooldown_ns = 1000;
  retry.backoff_base_ns = 0;
  ResilientOracle resilient(injector, retry, &clock);

  const CostVector c = {1.0, 2.0, 3.0};
  EXPECT_FALSE(resilient.TryOptimize(c).ok());
  EXPECT_FALSE(resilient.TryOptimize(c).ok());  // second failure trips it
  EXPECT_EQ(resilient.stats().breaker_trips, 1u);

  const Result<OracleResult> shorted = resilient.TryOptimize(c);
  ASSERT_FALSE(shorted.ok());
  EXPECT_EQ(shorted.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(resilient.stats().breaker_short_circuits, 1u);
  EXPECT_EQ(resilient.stats().attempts, 2u);  // open = no base traffic

  clock.Advance(2000);  // past the cooldown: one probe is let through
  EXPECT_FALSE(resilient.TryOptimize(c).ok());
  EXPECT_EQ(resilient.stats().attempts, 3u);      // the half-open probe ran
  EXPECT_EQ(resilient.stats().breaker_trips, 2u);  // and re-opened it
}

TEST(ResilientOracleTest, BackoffScheduleIsDeterministic) {
  const std::vector<PlanUsage> plans = MakePlans(3, 4);
  auto run = [&plans]() {
    FakeOracle base(plans, /*white_box=*/false);
    ManualClock clock;
    FaultInjectionOptions faults;
    faults.fault_rate = 1.0;
    FaultInjectingOracle injector(base, faults, &clock);
    ResilientOracleOptions retry;
    retry.max_retries = 5;
    ResilientOracle resilient(injector, retry, &clock);
    (void)resilient.TryOptimize({1.0, 2.0, 3.0});
    (void)resilient.TryOptimize({3.0, 2.0, 1.0});
    return resilient.stats().backoff_waited_ns;
  };
  const uint64_t first = run();
  const uint64_t second = run();
  EXPECT_GT(first, 0u);
  EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------------
// Fallible vertex sweeps.

struct SweepFixture {
  std::vector<PlanUsage> plans = MakePlans(8, 6);
  Box box = Box::MultiplicativeBand(CostVector(8, 1.0), 50.0);
  UsageVector initial = plans[0].usage;
};

TEST(FallibleSweepTest, MatchesInfallibleSweepWhenNothingFaults) {
  SweepFixture fx;
  for (core::SweepKernel kernel :
       {core::SweepKernel::kScalar, core::SweepKernel::kIncremental}) {
    for (size_t threads : {size_t{1}, size_t{3}}) {
      ThreadPool pool(threads);
      FakeOracle base_a(fx.plans, /*white_box=*/false);
      const Result<core::WorstCaseResult> want = core::WorstCaseByVertexSweep(
          base_a, fx.initial, fx.box, kernel, 20, &pool);
      ASSERT_TRUE(want.ok());

      FakeOracle base_b(fx.plans, /*white_box=*/false);
      core::InfallibleOracleAdapter adapter(base_b);
      const Result<core::WorstCaseResult> got = core::WorstCaseByVertexSweep(
          adapter, fx.initial, fx.box, kernel, 20, &pool);
      ASSERT_TRUE(got.ok());

      EXPECT_EQ(got->gtc, want->gtc);
      EXPECT_EQ(got->worst_costs, want->worst_costs);
      EXPECT_EQ(got->worst_rival, want->worst_rival);
      EXPECT_EQ(got->failed_vertices, 0u);
      EXPECT_EQ(got->total_vertices, fx.box.VertexCount());
      EXPECT_EQ(got->coverage, 1.0);
    }
  }
}

TEST(FallibleSweepTest, ZeroBudgetDegradationAccountsEveryFault) {
  SweepFixture fx;
  FakeOracle base(fx.plans, /*white_box=*/false);
  FaultInjectionOptions faults;
  faults.fault_rate = 0.3;
  FaultInjectingOracle injector(base, faults);
  ResilientOracleOptions retry;
  retry.max_retries = 0;
  ResilientOracle resilient(injector, retry);

  const Result<core::WorstCaseResult> r = core::WorstCaseByVertexSweep(
      resilient, fx.initial, fx.box, core::SweepKernel::kScalar, 20);
  ASSERT_TRUE(r.ok());  // degraded, not failed
  const FaultLog log = injector.log();
  EXPECT_GT(r->failed_vertices, 0u);
  EXPECT_EQ(r->failed_vertices, log.faults);
  EXPECT_EQ(r->failed_vertices, resilient.stats().failures);
  EXPECT_EQ(r->total_vertices, fx.box.VertexCount());
  EXPECT_EQ(r->coverage,
            static_cast<double>(r->total_vertices - r->failed_vertices) /
                static_cast<double>(r->total_vertices));
  EXPECT_LT(r->coverage, 1.0);
}

TEST(FallibleSweepTest, CheckpointResumeRepaysOnlyFailedBlocks) {
  SweepFixture fx;
  FakeOracle clean(fx.plans, /*white_box=*/false);
  const Result<core::WorstCaseResult> want = core::WorstCaseByVertexSweep(
      clean, fx.initial, fx.box, core::SweepKernel::kScalar, 20);
  ASSERT_TRUE(want.ok());

  FakeOracle base(fx.plans, /*white_box=*/false);
  ManualClock clock;
  FaultInjectionOptions faults;
  // Low enough that a decent fraction of 16-vertex blocks complete clean
  // (0.95^16 ~= 44%), high enough that several blocks fail.
  faults.fault_rate = 0.05;
  FaultInjectingOracle injector(base, faults, &clock);

  // First attempt: no retry budget, so faulted vertices fail and their
  // blocks stay unstored.
  ResilientOracleOptions no_retry;
  no_retry.max_retries = 0;
  ResilientOracle degraded(injector, no_retry, &clock);
  SweepCheckpoint ckpt(16);
  const uint64_t num_blocks =
      (fx.box.VertexCount() + ckpt.block_size() - 1) / ckpt.block_size();
  const Result<core::WorstCaseResult> first = core::WorstCaseByVertexSweep(
      degraded, fx.initial, fx.box, core::SweepKernel::kScalar, 20,
      /*pool=*/nullptr, &ckpt);
  ASSERT_TRUE(first.ok());
  EXPECT_LT(first->coverage, 1.0);
  EXPECT_LT(ckpt.blocks(), num_blocks);
  EXPECT_GT(ckpt.blocks(), 0u);

  // Snapshot/restore survives the trip bit-for-bit.
  const std::string snapshot = ckpt.Serialize();
  Result<SweepCheckpoint> loaded = SweepCheckpoint::Deserialize(snapshot);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->blocks(), ckpt.blocks());
  EXPECT_EQ(loaded->block_size(), ckpt.block_size());

  // Resume with an adequate retry budget against the same injector: only
  // the failed blocks re-probe (stored blocks cost zero oracle calls), and
  // the finished result is byte-identical to the fault-free sweep.
  ResilientOracleOptions with_retry;
  with_retry.max_retries = 5;
  ResilientOracle recovering(injector, with_retry, &clock);
  const size_t calls_before = base.calls();
  SweepCheckpoint resumed = std::move(loaded).value();
  const Result<core::WorstCaseResult> second = core::WorstCaseByVertexSweep(
      recovering, fx.initial, fx.box, core::SweepKernel::kScalar, 20,
      /*pool=*/nullptr, &resumed);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->coverage, 1.0);
  EXPECT_EQ(second->gtc, want->gtc);
  EXPECT_EQ(second->worst_costs, want->worst_costs);
  EXPECT_EQ(second->worst_rival, want->worst_rival);
  EXPECT_EQ(resumed.blocks(), num_blocks);
  EXPECT_LT(base.calls() - calls_before, fx.box.VertexCount());
}

TEST(CheckpointTest, SerializeRoundTripPreservesBlocksExactly) {
  SweepCheckpoint ckpt(64);
  SweepBlockResult a;
  a.gtc = 1.0 + 1e-16;  // bit pattern that %g would destroy
  a.mask = 0xdeadbeefULL;
  a.rival = "nested loop (orders x lineitem)";  // spaces survive
  a.any = true;
  a.degenerate = 7;
  ckpt.Store(3, a);
  SweepBlockResult b;  // defaults: no record in this block
  ckpt.Store(9, b);

  Result<SweepCheckpoint> loaded = SweepCheckpoint::Deserialize(
      ckpt.Serialize());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->block_size(), 64u);
  SweepBlockResult got;
  ASSERT_TRUE(loaded->Lookup(3, &got));
  EXPECT_EQ(got.gtc, a.gtc);
  EXPECT_EQ(got.mask, a.mask);
  EXPECT_EQ(got.rival, a.rival);
  EXPECT_EQ(got.any, a.any);
  EXPECT_EQ(got.degenerate, a.degenerate);
  ASSERT_TRUE(loaded->Lookup(9, &got));
  EXPECT_FALSE(got.any);
  EXPECT_FALSE(loaded->Lookup(4, &got));
}

TEST(CheckpointTest, MalformedSnapshotsAreTypedErrors) {
  EXPECT_EQ(SweepCheckpoint::Deserialize("").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SweepCheckpoint::Deserialize("not-a-checkpoint v1 block_size=4\n")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SweepCheckpoint::Deserialize(
                "costsense-sweep-checkpoint v99 block_size=4\n")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SweepCheckpoint::Deserialize(
                "costsense-sweep-checkpoint v1 block_size=4\ngarbage line\n")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Degradation-aware discovery.

core::DiscoveryOptions SmallDiscoveryOptions() {
  core::DiscoveryOptions options;
  options.random_samples = 8;
  options.bisection_depth = 2;
  options.completeness_rounds = 1;
  return options;
}

TEST(ResilientDiscoveryTest, NarrowModeEquivalentWhenRetriesAbsorbFaults) {
  const std::vector<PlanUsage> plans = MakePlans(3, 4);
  const Box box = Box::MultiplicativeBand({1.0, 1.0, 1.0}, 100.0);

  FakeOracle clean(plans, /*white_box=*/false);
  Rng rng_clean(123);
  const Result<core::DiscoveryResult> want = core::DiscoverCandidatePlans(
      clean, box, rng_clean, SmallDiscoveryOptions());
  ASSERT_TRUE(want.ok());
  ASSERT_GT(want->plans.size(), 1u);

  FakeOracle base(plans, /*white_box=*/false);
  ManualClock clock;
  FaultInjectionOptions faults;
  faults.fault_rate = 0.3;
  faults.max_burst = 3;
  FaultInjectingOracle injector(base, faults, &clock);
  ResilientOracleOptions retry;
  retry.max_retries = 5;
  ResilientOracle resilient(injector, retry, &clock);
  Rng rng_faulted(123);
  const Result<core::DiscoveryResult> got = core::DiscoverCandidatePlans(
      resilient, box, rng_faulted, SmallDiscoveryOptions());
  ASSERT_TRUE(got.ok());

  // Retries absorb every burst, so the discovered set — witnesses, ids,
  // and the least-squares-extracted usage vectors — is bitwise identical.
  EXPECT_EQ(got->failed_probes, 0u);
  ASSERT_EQ(got->plans.size(), want->plans.size());
  for (size_t i = 0; i < want->plans.size(); ++i) {
    EXPECT_EQ(got->plans[i].plan.plan_id, want->plans[i].plan.plan_id);
    EXPECT_EQ(got->plans[i].plan.usage, want->plans[i].plan.usage);
    EXPECT_EQ(got->plans[i].witness, want->plans[i].witness);
    EXPECT_EQ(got->plans[i].usage_from_least_squares,
              want->plans[i].usage_from_least_squares);
  }
  EXPECT_GT(injector.log().faults, 0u);  // faults really were injected
  EXPECT_GT(resilient.stats().recovered, 0u);
}

TEST(ResilientDiscoveryTest, ZeroBudgetDegradationReconcilesWithFaultLog) {
  const std::vector<PlanUsage> plans = MakePlans(3, 4);
  const Box box = Box::MultiplicativeBand({1.0, 1.0, 1.0}, 100.0);

  FakeOracle base(plans, /*white_box=*/false);
  FaultInjectionOptions faults;
  faults.fault_rate = 0.2;
  FaultInjectingOracle injector(base, faults);
  ResilientOracleOptions retry;
  retry.max_retries = 0;
  ResilientOracle resilient(injector, retry);
  Rng rng(123);
  const Result<core::DiscoveryResult> d = core::DiscoverCandidatePlans(
      resilient, box, rng, SmallDiscoveryOptions());
  ASSERT_TRUE(d.ok());  // degraded, not dead

  const FaultLog log = injector.log();
  EXPECT_GT(log.faults, 0u);
  EXPECT_EQ(d->failed_probes, log.faults);
  EXPECT_EQ(d->failed_probes, resilient.stats().failures);
}

// ---------------------------------------------------------------------------
// Extraction under bounded optimizer noise (property test) and
// rank-deficiency.

TEST(NoisyExtractionTest, RecoversUsageWithinToleranceUnderBoundedNoise) {
  // pA's region of influence is ample around its witness; a persistent
  // per-key relative cost perturbation of 0.5% must not move the
  // least-squares estimate more than a few percent.
  const std::vector<PlanUsage> plans = {
      {"pA", {1.0, 0.2, 0.2}},
      {"pB", {0.2, 1.0, 0.2}},
      {"pC", {0.2, 0.2, 1.0}},
  };
  const Box box = Box::MultiplicativeBand({1.0, 1.0, 1.0}, 4.0);
  const CostVector seed_point = {0.25, 2.0, 2.0};  // deep inside pA's region

  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    FakeOracle base(plans, /*white_box=*/false);
    FaultInjectionOptions faults;
    faults.perturb_rate = 1.0;  // every key carries bounded noise
    faults.perturb_rel_error = 0.005;
    faults.seed = 0xFA17FA17 + seed;
    FaultInjectingOracle injector(base, faults);

    Rng rng(1000 + seed);
    core::ExtractionTelemetry telemetry;
    const Result<core::ExtractedUsage> got = core::ExtractUsageVector(
        injector, "pA", seed_point, box, rng, core::ExtractionOptions{},
        &telemetry);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->usage.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(got->usage[i], plans[0].usage[i], 0.05)
          << "seed " << seed << " component " << i;
    }
    EXPECT_GT(injector.log().perturbed_calls, 0u);
    EXPECT_EQ(telemetry.failed_probes, 0u);
  }
}

TEST(NoisyExtractionTest, RankDeficientProbeMatrixIsATypedError) {
  const std::vector<PlanUsage> plans = MakePlans(3, 3);
  // A degenerate (zero-volume) box collapses every jittered sample onto
  // the seed point: the probe matrix has rank 1 and the fit must refuse.
  const Box box({2.0, 2.0, 2.0}, {2.0, 2.0, 2.0});
  const CostVector seed_point = {2.0, 2.0, 2.0};
  FakeOracle base(plans, /*white_box=*/false);
  const std::string plan_at_seed = base.Optimize(seed_point).plan_id;

  core::InfallibleOracleAdapter adapter(base);
  Rng rng(7);
  core::ExtractionTelemetry telemetry;
  const Result<core::ExtractedUsage> got = core::ExtractUsageVector(
      adapter, plan_at_seed, seed_point, box, rng, core::ExtractionOptions{},
      &telemetry);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(got.status().message().find("unusable"), std::string::npos);
  EXPECT_GT(telemetry.oracle_calls, 0u);  // telemetry filled despite error
}

}  // namespace
}  // namespace costsense::runtime::resilience
