// Tests of the composable sink stages: the Write/Flush/Close contract
// (post-Close use is a typed kFailedPrecondition, double Close is a
// no-op), byte-transparency of the coalescing buffer under arbitrary
// chunkings, CRC record framing against the shared Crc32, the atomic
// file stage's publish/abort crash contract, and the deterministic block
// compressor — round trips across input shapes, chunking invariance,
// Flush-cut streams, and the whole corruption matrix of the decoder.
#include "runtime/sink/stages.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/sink/compress.h"
#include "runtime/sink/crc32.h"

namespace costsense::runtime::sink {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

std::string BigEndian32(uint32_t v) {
  std::string out;
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
  return out;
}

/// Deterministic incompressible-ish bytes (no libc rand; lint rule R1).
std::string NoiseBytes(size_t n) {
  std::string out;
  out.reserve(n);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    out.push_back(static_cast<char>(state >> 56));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Crc32
// ---------------------------------------------------------------------------

TEST(Crc32Test, MatchesTheIeeeCheckVectors) {
  EXPECT_EQ(Crc32(""), 0u);
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_NE(Crc32("abc"), Crc32("abd"));
}

// ---------------------------------------------------------------------------
// StringSink: the terminal contract everything else is tested against
// ---------------------------------------------------------------------------

TEST(StringSinkTest, AppendsAndEnforcesTheCloseContract) {
  std::string out;
  StringSink sink(&out);
  ASSERT_TRUE(sink.Write("ab").ok());
  ASSERT_TRUE(sink.Write("cd").ok());
  ASSERT_TRUE(sink.Flush().ok());
  EXPECT_EQ(out, "abcd");

  ASSERT_TRUE(sink.Close().ok());
  EXPECT_TRUE(sink.Close().ok());  // second Close is a no-op success
  const Status late = sink.Write("x");
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(late.message().find("after Close"), std::string::npos);
  EXPECT_EQ(out, "abcd");  // the refused write left no bytes behind
}

// ---------------------------------------------------------------------------
// BufferSink: transparent coalescing
// ---------------------------------------------------------------------------

TEST(BufferSinkTest, ByteTransparentUnderAnyChunking) {
  const std::string payload =
      "line one\nline two\nline three is a bit longer\n";
  // Reference: the raw bytes, no buffer stage.
  for (const size_t chunk : {size_t{1}, size_t{3}, size_t{64}}) {
    std::string out;
    StringSink leaf(&out);
    BufferSink buffer(leaf, /*capacity=*/8);
    for (size_t pos = 0; pos < payload.size(); pos += chunk) {
      ASSERT_TRUE(
          buffer.Write(std::string_view(payload).substr(pos, chunk)).ok());
    }
    ASSERT_TRUE(buffer.Close().ok());
    EXPECT_EQ(out, payload) << "chunk=" << chunk;
  }
}

TEST(BufferSinkTest, OversizedSpansBypassWithoutReordering) {
  std::string out;
  StringSink leaf(&out);
  BufferSink buffer(leaf, /*capacity=*/4);
  ASSERT_TRUE(buffer.Write("ab").ok());  // buffered
  const std::string big(32, 'z');        // larger than capacity
  ASSERT_TRUE(buffer.Write(big).ok());
  ASSERT_TRUE(buffer.Write("cd").ok());
  ASSERT_TRUE(buffer.Close().ok());
  EXPECT_EQ(out, "ab" + big + "cd");
}

TEST(BufferSinkTest, FlushDrainsThePartialBatch) {
  std::string out;
  StringSink leaf(&out);
  BufferSink buffer(leaf, /*capacity=*/8);
  ASSERT_TRUE(buffer.Write("abc").ok());
  EXPECT_TRUE(out.empty());  // below capacity: nothing forwarded yet
  ASSERT_TRUE(buffer.Flush().ok());
  EXPECT_EQ(out, "abc");  // the checkpoint pushed the partial batch down
  ASSERT_TRUE(buffer.Close().ok());
  EXPECT_EQ(out, "abc");
}

// ---------------------------------------------------------------------------
// CrcFrameSink: one Write == one framed record
// ---------------------------------------------------------------------------

TEST(CrcFrameSinkTest, FramesEachRecordWithLengthAndCrc) {
  std::string out;
  StringSink leaf(&out);
  CrcFrameSink frames(leaf);
  ASSERT_TRUE(frames.Write("hello").ok());
  ASSERT_TRUE(frames.Write("").ok());
  ASSERT_TRUE(frames.Close().ok());

  std::string expected;
  expected += BigEndian32(5) + BigEndian32(Crc32("hello")) + "hello";
  expected += BigEndian32(0) + BigEndian32(Crc32(""));
  EXPECT_EQ(out, expected);
}

// ---------------------------------------------------------------------------
// File stages
// ---------------------------------------------------------------------------

TEST(FileSinkTest, OpensLazilySoAnUnusedChainTouchesNothing) {
  const std::string path = testing::TempDir() + "sink_test_lazy.bin";
  std::remove(path.c_str());
  {
    FileSink sink(path, FileSink::Mode::kAppend);
    ASSERT_TRUE(sink.Close().ok());
  }
  EXPECT_FALSE(FileExists(path));
}

TEST(AtomicFileSinkTest, ClosePublishesAndCleansTheStagingFile) {
  const std::string path = testing::TempDir() + "sink_test_atomic.bin";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());

  AtomicFileSink sink(path);
  ASSERT_TRUE(sink.Write("durable ").ok());
  ASSERT_TRUE(sink.Flush().ok());
  EXPECT_FALSE(FileExists(path));  // nothing published before Close
  ASSERT_TRUE(sink.Write("bytes").ok());
  ASSERT_TRUE(sink.Close().ok());
  EXPECT_EQ(ReadFile(path), "durable bytes");
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(AtomicFileSinkTest, AbortAndDestructorKeepThePreviousFile) {
  const std::string path = testing::TempDir() + "sink_test_abort.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "previous";
  }
  {
    AtomicFileSink sink(path);
    ASSERT_TRUE(sink.Write("half-written replacement").ok());
    sink.Abort();
    sink.Abort();  // idempotent
  }
  EXPECT_EQ(ReadFile(path), "previous");
  EXPECT_FALSE(FileExists(path + ".tmp"));

  {
    AtomicFileSink sink(path);
    ASSERT_TRUE(sink.Write("also abandoned").ok());
    // No Close: the destructor must behave like Abort.
  }
  EXPECT_EQ(ReadFile(path), "previous");
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(AtomicFileSinkTest, UnwritableDirectoryIsATypedError) {
  AtomicFileSink sink("/nonexistent-dir/sink_test.bin");
  const Status st = sink.Write("x");
  ASSERT_FALSE(st.ok());
  EXPECT_FALSE(st.message().empty());
  // The sink is dead after an I/O failure; later writes stay errors.
  EXPECT_FALSE(sink.Write("y").ok());
}

// ---------------------------------------------------------------------------
// Block compressor
// ---------------------------------------------------------------------------

TEST(CompressTest, RoundTripsEveryInputShape) {
  std::string repetitive;
  for (int i = 0; i < 500; ++i) repetitive += "abcabcabc ";
  std::string multi_block;  // forces several 64 KiB blocks
  while (multi_block.size() < 3 * kCompressBlockBytes / 2) {
    multi_block += "delta=100 gtc=1.25 plan=p_idx\n";
  }
  const std::vector<std::string> shapes = {
      "", "a", "abcd", repetitive, NoiseBytes(1000), multi_block};
  for (const std::string& raw : shapes) {
    const std::string packed = CompressToBlocks(raw);
    const Result<std::string> unpacked = DecompressBlocks(packed);
    ASSERT_TRUE(unpacked.ok())
        << "size=" << raw.size() << ": " << unpacked.status().ToString();
    EXPECT_EQ(*unpacked, raw) << "size=" << raw.size();
  }
  // Compression actually compresses the compressible shape.
  EXPECT_LT(CompressToBlocks(repetitive).size(), repetitive.size() / 2);
}

TEST(CompressTest, OutputIsDeterministicAndChunkingInvariant) {
  std::string raw;
  while (raw.size() < kCompressBlockBytes + 1000) {
    raw += "query=Q19 delta=1000 worst=p_seq gtc=2.5\n";
  }
  const std::string reference = CompressToBlocks(raw);
  EXPECT_EQ(CompressToBlocks(raw), reference);  // byte-identical repeat

  for (const size_t chunk : {size_t{1}, size_t{37}, size_t{4096}}) {
    std::string out;
    StringSink leaf(&out);
    BlockCompressSink compress(leaf);
    for (size_t pos = 0; pos < raw.size(); pos += chunk) {
      ASSERT_TRUE(
          compress.Write(std::string_view(raw).substr(pos, chunk)).ok());
    }
    ASSERT_TRUE(compress.Close().ok());
    EXPECT_EQ(out, reference) << "chunk=" << chunk;
  }
}

TEST(CompressTest, FlushCutsABlockThatStillDecodes) {
  const std::string head = "first checkpointed half\n";
  const std::string tail = "bytes written after the checkpoint\n";
  std::string out;
  StringSink leaf(&out);
  BlockCompressSink compress(leaf);
  ASSERT_TRUE(compress.Write(head).ok());
  ASSERT_TRUE(compress.Flush().ok());
  // The checkpoint left a complete, decodable prefix on the wire.
  const Result<std::string> at_checkpoint = DecompressBlocks(out);
  ASSERT_TRUE(at_checkpoint.ok()) << at_checkpoint.status().ToString();
  EXPECT_EQ(*at_checkpoint, head);

  ASSERT_TRUE(compress.Write(tail).ok());
  ASSERT_TRUE(compress.Close().ok());
  const Result<std::string> full = DecompressBlocks(out);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(*full, head + tail);
}

TEST(CompressTest, PostCloseUseIsATypedError) {
  std::string out;
  StringSink leaf(&out);
  BlockCompressSink compress(leaf);
  ASSERT_TRUE(compress.Write("x").ok());
  ASSERT_TRUE(compress.Close().ok());
  ASSERT_TRUE(compress.Close().ok());  // idempotent
  EXPECT_EQ(compress.Write("y").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(compress.Flush().code(), StatusCode::kFailedPrecondition);
}

TEST(CompressTest, DecoderRejectsEveryCorruptionClass) {
  std::string raw;
  for (int i = 0; i < 200; ++i) raw += "some mildly repetitive payload ";
  const std::string good = CompressToBlocks(raw);
  ASSERT_TRUE(DecompressBlocks(good).ok());

  struct Case {
    const char* name;
    std::string bytes;
  };
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  std::string raw_len_lie = good;
  raw_len_lie[7] = static_cast<char>(raw_len_lie[7] + 1);
  std::string huge_raw_len = good;  // past the block bound: never allocated
  huge_raw_len[4] = static_cast<char>(0xff);
  std::string comp_len_lie = good;
  comp_len_lie[11] = static_cast<char>(comp_len_lie[11] ^ 0x01);
  std::string crc_flip = good;
  crc_flip[13] = static_cast<char>(crc_flip[13] ^ 0x40);
  std::string body_flip = good;
  body_flip[20] = static_cast<char>(body_flip[20] ^ 0x01);

  const std::vector<Case> cases = {
      {"truncated header", good.substr(0, 9)},
      {"bad magic", bad_magic},
      {"raw length lie", raw_len_lie},
      {"huge raw length", huge_raw_len},
      {"compressed length lie", comp_len_lie},
      {"crc flip", crc_flip},
      {"body bit flip", body_flip},
      {"truncated tail", good.substr(0, good.size() - 1)},
      {"trailing garbage", good + "x"},
  };
  for (const Case& c : cases) {
    const Result<std::string> r = DecompressBlocks(c.bytes);
    ASSERT_FALSE(r.ok()) << c.name;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << c.name;
    EXPECT_NE(r.status().message().find("compressed block stream"),
              std::string::npos)
        << c.name << ": " << r.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// A full chain: buffer over compressor over CRC-framed atomic file
// ---------------------------------------------------------------------------

TEST(ChainTest, StackedStagesComposeAndTearDownWithOneClose) {
  const std::string path = testing::TempDir() + "sink_test_chain.bin";
  std::remove(path.c_str());
  std::string payload;
  for (int i = 0; i < 300; ++i) payload += "chained artifact line\n";

  {
    AtomicFileSink file(path);
    BlockCompressSink compress(file);
    BufferSink buffer(compress, /*capacity=*/64);
    for (size_t pos = 0; pos < payload.size(); pos += 10) {
      ASSERT_TRUE(
          buffer.Write(std::string_view(payload).substr(pos, 10)).ok());
    }
    ASSERT_TRUE(buffer.Close().ok());  // closes the whole stack
  }
  const Result<std::string> decoded = DecompressBlocks(ReadFile(path));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, payload);
  // The buffer stage must not have changed the compressed bytes either.
  EXPECT_EQ(ReadFile(path), CompressToBlocks(payload));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace costsense::runtime::sink
