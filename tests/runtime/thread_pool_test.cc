// Tests of the fixed-size thread pool: startup/shutdown, fork-join
// correctness, deterministic Status propagation, and the nested-loop
// no-deadlock guarantee the discovery driver depends on.
#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace costsense::runtime {
namespace {

TEST(GlobalThreadCountTest, CountsAreAtLeastOne) {
  // The pool never reads the environment itself; engine::Engine::Create
  // translates the typed config into ConfigureGlobalThreadCount.
  EXPECT_GE(DefaultThreadCount(), 1u);
  EXPECT_GE(GlobalThreadCount(), 1u);
}

TEST(GlobalThreadCountTest, ReconfigureAfterBuildFailsLoudly) {
  // Force the global pool into existence, then ask for a different size:
  // the setting could no longer take effect, so it must refuse rather
  // than run mis-sized.
  const size_t built = ThreadPool::Global().num_threads();
  EXPECT_TRUE(ConfigureGlobalThreadCount(built).ok());
  EXPECT_TRUE(ConfigureGlobalThreadCount(0).ok() ||
              built != DefaultThreadCount());
  const Status mismatched = ConfigureGlobalThreadCount(built + 1);
  EXPECT_EQ(mismatched.code(), StatusCode::kFailedPrecondition);
  // Restore the matching setting so later tests see a consistent state.
  EXPECT_TRUE(ConfigureGlobalThreadCount(built).ok());
}

TEST(ThreadPoolTest, StartupAndShutdownAcrossSizes) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    // Destruction with an idle queue must not hang (checked by exiting
    // the loop body).
  }
}

TEST(ThreadPoolTest, SubmitDrainsOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  bool ran = false;
  pool.Submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);  // no workers: Submit runs the task before returning
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const size_t n = 1000;
    std::vector<std::atomic<int>> seen(n);
    const Status s = pool.ParallelFor(n, [&](size_t i) {
      seen[i].fetch_add(1);
      return Status::Ok();
    });
    EXPECT_TRUE(s.ok());
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(seen[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(4);
  EXPECT_TRUE(pool.ParallelFor(0, [](size_t) { return Status::Ok(); }).ok());
  int runs = 0;
  EXPECT_TRUE(pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++runs;
    return Status::Ok();
  }).ok());
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPoolTest, StatusPropagatesLowestFailingIndex) {
  // All iterations run even when some fail, and the reported error is the
  // one with the smallest index — deterministic for any schedule.
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const size_t n = 500;
    std::atomic<size_t> executed{0};
    const Status s = pool.ParallelFor(n, [&](size_t i) -> Status {
      executed.fetch_add(1);
      if (i == 7 || i == 3 || i == 400) {
        return Status::Internal("boom at " + std::to_string(i));
      }
      return Status::Ok();
    });
    EXPECT_EQ(executed.load(), n);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("boom at 3"), std::string::npos)
        << s.ToString();
  }
}

TEST(ThreadPoolTest, MassFailureUnderContentionReportsLowestIndex) {
  // Adversarial variant of the test above, modeled on a fault-injected
  // probe sweep: hundreds of iterations fail, and the lowest failing
  // index is deliberately the *slowest* to report, so an implementation
  // that kept the first error to arrive would return a higher index.
  // Every round on the contended pool must still run all iterations and
  // report the lowest failing index.
  ThreadPool pool(4);
  const size_t n = 1000;
  for (size_t round = 0; round < 5; ++round) {
    const size_t lowest = 11 + 31 * round;
    std::atomic<size_t> executed{0};
    const Status s = pool.ParallelFor(n, [&](size_t i) -> Status {
      executed.fetch_add(1);
      if (i < lowest || (i - lowest) % 3 != 0) return Status::Ok();
      if (i == lowest) {
        // Make the winning error the last one to arrive in wall time.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      return Status::Unavailable("fault at " + std::to_string(i));
    });
    EXPECT_EQ(executed.load(), n);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("fault at " + std::to_string(lowest)),
              std::string::npos)
        << "round " << round << ": " << s.ToString();
  }
}

TEST(ThreadPoolTest, ParallelMapPreservesInputOrder) {
  ThreadPool pool(4);
  std::vector<int> items;
  for (int i = 0; i < 300; ++i) items.push_back(i);
  const std::vector<long> out =
      pool.ParallelMap(items, [](size_t i, int v) -> long {
        EXPECT_EQ(static_cast<int>(i), v);
        return static_cast<long>(v) * v;
      });
  ASSERT_EQ(out.size(), items.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<long>(i) * static_cast<long>(i));
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // The discovery driver nests loops (queries -> probes -> extraction);
  // caller participation means a saturated pool degrades to inline
  // execution instead of deadlocking.
  ThreadPool pool(4);
  std::atomic<size_t> inner_total{0};
  const Status s = pool.ParallelFor(16, [&](size_t) {
    return pool.ParallelFor(16, [&](size_t) {
      inner_total.fetch_add(1);
      return Status::Ok();
    });
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(inner_total.load(), 16u * 16u);
}

TEST(ThreadPoolTest, StatsCountWork) {
  ThreadPool pool(4);
  (void)pool.ParallelFor(64, [](size_t) { return Status::Ok(); });
  EXPECT_EQ(pool.stats().threads, 4u);
  // ParallelFor may complete through the caller's lane before any worker
  // pops its helper task, but submitted helpers always run eventually.
  PoolStats stats = pool.stats();
  for (int i = 0; i < 5000 && stats.tasks_run == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = pool.stats();
  }
  EXPECT_GT(stats.tasks_run, 0u);
}

TEST(ThreadPoolTest, QueueDepthReportsPendingTasks) {
  // Plug the only worker with a gate task, pile tasks behind it, and the
  // instantaneous depth must count them; after the gate opens and the
  // queue drains, depth returns to zero.
  ThreadPool pool(2);  // one worker thread
  std::mutex gate;
  gate.lock();
  pool.Submit([&gate] {
    gate.lock();  // blocks until the test releases it
    gate.unlock();
  });
  const int backlog = 7;
  std::atomic<int> ran{0};
  for (int i = 0; i < backlog; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  // Once the worker claims the gate task and blocks on it, exactly the
  // backlog is queued (before that the snapshot may also count the gate).
  PoolStats stats = pool.stats();
  for (int i = 0; i < 5000 && stats.queue_depth != static_cast<size_t>(backlog);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = pool.stats();
  }
  EXPECT_EQ(stats.queue_depth, static_cast<size_t>(backlog));
  EXPECT_GE(stats.queue_high_water, stats.queue_depth);
  gate.unlock();
  pool.Drain();
  EXPECT_EQ(ran.load(), backlog);
  EXPECT_EQ(pool.stats().queue_depth, 0u);
}

TEST(ThreadPoolTest, DrainWaitsForQueuedAndActiveTasks) {
  // Drain must rendezvous with tasks that are *executing*, not just wait
  // for an empty queue: a task started before Drain finishes after it.
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  const int tasks = 50;
  for (int i = 0; i < tasks; ++i) {
    pool.Submit([&completed] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      completed.fetch_add(1);
    });
  }
  pool.Drain();
  EXPECT_EQ(completed.load(), tasks);
  // The pool stays fully usable after a drain (quiesce, not teardown).
  std::atomic<int> after{0};
  pool.Submit([&after] { after.fetch_add(1); });
  pool.Drain();
  EXPECT_EQ(after.load(), 1);
}

TEST(ThreadPoolTest, DrainOnIdleOrSingleThreadPoolReturnsImmediately) {
  ThreadPool idle(4);
  idle.Drain();  // nothing queued, nothing active: must not block
  ThreadPool serial(1);
  serial.Submit([] {});  // ran inline already
  serial.Drain();
  EXPECT_EQ(serial.stats().queue_depth, 0u);
}

TEST(ForEachIndexTest, NullPoolRunsSerially) {
  std::vector<int> seen(10, 0);
  const Status ok = ForEachIndex(nullptr, 10, [&](size_t i) {
    seen[i] += 1;
    return Status::Ok();
  });
  EXPECT_TRUE(ok.ok());
  for (int v : seen) EXPECT_EQ(v, 1);

  // Same lowest-index-error, all-iterations semantics as the pool path.
  int executed = 0;
  const Status err = ForEachIndex(nullptr, 10, [&](size_t i) -> Status {
    ++executed;
    if (i == 6 || i == 2) return Status::Internal("x" + std::to_string(i));
    return Status::Ok();
  });
  EXPECT_EQ(executed, 10);
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.message().find("x2"), std::string::npos);
}

}  // namespace
}  // namespace costsense::runtime
