// Tests of the costsense-serve subsystem: wire-protocol round trips and
// rejection of malformed frames, the in-process and Unix-socket
// transports, bounded admission (typed kUnavailable under saturation,
// never a hang), per-request deadlines on a manual clock, and the
// headline invariant — interleaved concurrent sessions produce
// byte-identical analysis payloads to serial execution at any thread
// count.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <fstream>

#include "engine/artifact.h"
#include "runtime/resilience/clock.h"
#include "runtime/thread_pool.h"
#include "serve/admission.h"
#include "serve/dispatcher.h"
#include "serve/protocol.h"
#include "serve/session.h"
#include "serve/snapshotter.h"
#include "serve/transport.h"

namespace costsense::serve {
namespace {

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST(ProtocolTest, RequestRoundTrip) {
  AnalysisRequest request;
  request.kind = AnalysisKind::kGtcSeries;
  request.policy = storage::LayoutPolicy::kPerTableColocated;
  request.query_number = 14;
  request.deadline_ns = 123456789;
  request.deltas = {2.0, 10.0, 1000.0};

  const Result<AnalysisRequest> decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, request.kind);
  EXPECT_EQ(decoded->policy, request.policy);
  EXPECT_EQ(decoded->query_number, request.query_number);
  EXPECT_EQ(decoded->deadline_ns, request.deadline_ns);
  EXPECT_EQ(decoded->deltas, request.deltas);
}

TEST(ProtocolTest, ResponseRoundTrip) {
  AnalysisResponse response;
  response.code = StatusCode::kDeadlineExceeded;
  response.body = "budget spent";
  const Result<AnalysisResponse> decoded =
      DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->code, response.code);
  EXPECT_EQ(decoded->body, response.body);
}

TEST(ProtocolTest, MalformedRequestsAreTypedErrors) {
  const std::string good = EncodeRequest(AnalysisRequest{});

  // Truncated at every prefix length.
  for (size_t len = 0; len < good.size(); ++len) {
    const Result<AnalysisRequest> r = DecodeRequest(good.substr(0, len));
    ASSERT_FALSE(r.ok()) << "prefix length " << len;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Trailing bytes.
  {
    const Result<AnalysisRequest> r = DecodeRequest(good + "x");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Wrong version.
  {
    std::string bad = good;
    bad[0] = 99;
    EXPECT_FALSE(DecodeRequest(bad).ok());
  }
  // Unknown analysis kind / policy.
  {
    std::string bad = good;
    bad[1] = 17;
    EXPECT_FALSE(DecodeRequest(bad).ok());
    bad = good;
    bad[2] = 17;
    EXPECT_FALSE(DecodeRequest(bad).ok());
  }
  // Query number outside TPC-H.
  {
    AnalysisRequest request;
    request.query_number = 23;
    EXPECT_FALSE(DecodeRequest(EncodeRequest(request)).ok());
    request.query_number = 0;
    EXPECT_FALSE(DecodeRequest(EncodeRequest(request)).ok());
  }
  // Deltas must be finite and > 1.
  {
    AnalysisRequest request;
    request.deltas = {0.5};
    EXPECT_FALSE(DecodeRequest(EncodeRequest(request)).ok());
    request.deltas = {1.0};
    EXPECT_FALSE(DecodeRequest(EncodeRequest(request)).ok());
  }
  // Empty delta list.
  {
    AnalysisRequest request;
    request.deltas = {};
    EXPECT_FALSE(DecodeRequest(EncodeRequest(request)).ok());
  }
}

TEST(ProtocolTest, ResponseRejectsUnknownCodeAndLengthMismatch) {
  const std::string good = EncodeResponse(AnalysisResponse{});
  std::string bad = good;
  bad[1] = 99;  // past kDeadlineExceeded
  EXPECT_FALSE(DecodeResponse(bad).ok());
  EXPECT_FALSE(DecodeResponse(good + "extra").ok());
}

// ---------------------------------------------------------------------------
// Protocol v2: explicit feasible-region boxes on the request
// ---------------------------------------------------------------------------

/// A 3-dim explicit box (matches the kSharedDevice resource space:
/// seek + transfer + cpu).
core::Box TestBox() {
  const Result<core::Box> box = core::Box::Validated(
      core::CostVector({0.5, 0.25, 0.125}),
      core::CostVector({8.0, 16.0, 4.0}));
  EXPECT_TRUE(box.ok()) << box.status().ToString();
  return *box;
}

TEST(ProtocolV2Test, RequestRoundTripsWithAndWithoutBox) {
  AnalysisRequest request;
  request.version = kProtocolVersionV2;
  request.kind = AnalysisKind::kWorstCase;
  request.query_number = 6;
  request.deltas = {100.0};
  {
    const Result<AnalysisRequest> decoded =
        DecodeRequest(EncodeRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->version, kProtocolVersionV2);
    EXPECT_EQ(decoded->kind, request.kind);
    EXPECT_FALSE(decoded->box.has_value());
  }
  const core::Box box = TestBox();
  request.box = box;
  const Result<AnalysisRequest> decoded =
      DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(decoded->box.has_value());
  ASSERT_EQ(decoded->box->dims(), box.dims());
  for (size_t i = 0; i < box.dims(); ++i) {
    EXPECT_EQ(decoded->box->lower()[i], box.lower()[i]) << i;
    EXPECT_EQ(decoded->box->upper()[i], box.upper()[i]) << i;
  }
}

TEST(ProtocolV2Test, MalformedBoxesAreTypedErrors) {
  AnalysisRequest request;
  request.version = kProtocolVersionV2;
  request.box = TestBox();
  const std::string good = EncodeRequest(request);
  ASSERT_TRUE(DecodeRequest(good).ok());
  // With the default single delta the box region starts at byte 23:
  // u8 has_box | u16 dims | 3 x f64 lower | 3 x f64 upper.
  const size_t kBoxOffset = 23;

  // Truncation anywhere inside the box region.
  for (size_t len = kBoxOffset; len < good.size(); ++len) {
    const Result<AnalysisRequest> r = DecodeRequest(good.substr(0, len));
    ASSERT_FALSE(r.ok()) << "prefix length " << len;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Trailing bytes after a complete box.
  EXPECT_FALSE(DecodeRequest(good + "x").ok());
  // has-box flag outside {0, 1}.
  {
    std::string bad = good;
    bad[kBoxOffset] = 2;
    EXPECT_FALSE(DecodeRequest(bad).ok());
  }
  // Dimension count of zero (and one that disagrees with the payload).
  {
    std::string bad = good;
    bad[kBoxOffset + 1] = 0;
    bad[kBoxOffset + 2] = 0;
    EXPECT_FALSE(DecodeRequest(bad).ok());
    bad[kBoxOffset + 2] = 7;
    EXPECT_FALSE(DecodeRequest(bad).ok());
  }
  // Bounds validation runs at decode: swapping the lower and upper blocks
  // makes every lower bound exceed its upper bound.
  {
    std::string bad = good;
    std::swap_ranges(bad.begin() + kBoxOffset + 3,
                     bad.begin() + kBoxOffset + 3 + 24,
                     bad.begin() + kBoxOffset + 3 + 24);
    const Result<AnalysisRequest> r = DecodeRequest(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Protocol v2: the response frame stream and its reassembler
// ---------------------------------------------------------------------------

TEST(ProtocolV2Test, ResponseFramesRoundTrip) {
  ResponseFrame header;
  header.type = ResponseFrameType::kHeader;
  header.kind = AnalysisKind::kGtcSeries;
  header.policy = storage::LayoutPolicy::kPerTableColocated;
  header.query_number = 14;
  {
    const Result<ResponseFrame> decoded =
        DecodeResponseFrame(EncodeResponseFrame(header));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->type, ResponseFrameType::kHeader);
    EXPECT_EQ(decoded->kind, header.kind);
    EXPECT_EQ(decoded->policy, header.policy);
    EXPECT_EQ(decoded->query_number, header.query_number);
  }
  ResponseFrame records;
  records.type = ResponseFrameType::kRecords;
  records.records = {"alpha", "", std::string("b\0c", 3)};
  {
    const Result<ResponseFrame> decoded =
        DecodeResponseFrame(EncodeResponseFrame(records));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->type, ResponseFrameType::kRecords);
    EXPECT_EQ(decoded->records, records.records);
  }
  ResponseFrame status;
  status.type = ResponseFrameType::kStatus;
  status.code = StatusCode::kDeadlineExceeded;
  status.message = "budget spent";
  {
    const Result<ResponseFrame> decoded =
        DecodeResponseFrame(EncodeResponseFrame(status));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->type, ResponseFrameType::kStatus);
    EXPECT_EQ(decoded->code, status.code);
    EXPECT_EQ(decoded->message, status.message);
  }
}

TEST(ProtocolV2Test, MalformedResponseFramesAreTypedErrors) {
  ResponseFrame records;
  records.type = ResponseFrameType::kRecords;
  records.records = {"alpha"};
  const std::string good = EncodeResponseFrame(records);

  for (const auto& [name, bytes] : std::vector<std::pair<const char*,
                                                         std::string>>{
           {"empty payload", ""},
           {"version byte", [&] {
              std::string b = good;
              b[0] = kProtocolVersion;
              return b;
            }()},
           {"unknown frame type", [&] {
              std::string b = good;
              b[1] = 9;
              return b;
            }()},
           {"record length lie", [&] {
              std::string b = good;
              b[2] = 0x7f;  // claims a record far past the payload
              return b;
            }()},
           {"record body cut", good.substr(0, good.size() - 1)},
       }) {
    const Result<ResponseFrame> r = DecodeResponseFrame(bytes);
    ASSERT_FALSE(r.ok()) << name;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << name;
  }
  // A status frame whose length field lies about the remaining bytes.
  ResponseFrame status;
  status.type = ResponseFrameType::kStatus;
  status.message = "msg";
  std::string bad_status = EncodeResponseFrame(status);
  bad_status[6] = static_cast<char>(bad_status[6] + 1);
  EXPECT_FALSE(DecodeResponseFrame(bad_status).ok());
}

std::string FrameOfRecords(std::vector<std::string> bodies) {
  ResponseFrame frame;
  frame.type = ResponseFrameType::kRecords;
  frame.records = std::move(bodies);
  return EncodeResponseFrame(frame);
}

std::string FrameOfStatus(StatusCode code, const std::string& message) {
  ResponseFrame frame;
  frame.type = ResponseFrameType::kStatus;
  frame.code = code;
  frame.message = message;
  return EncodeResponseFrame(frame);
}

std::string FrameOfHeader() {
  ResponseFrame frame;
  frame.type = ResponseFrameType::kHeader;
  frame.kind = AnalysisKind::kWorstCase;
  frame.query_number = 6;
  return EncodeResponseFrame(frame);
}

TEST(ResponseReassemblerTest, ConcatenatesRecordsAndEchoesTheHeader) {
  ResponseReassembler reassembler;
  ASSERT_TRUE(reassembler.Feed(FrameOfHeader()).ok());
  EXPECT_FALSE(reassembler.done());  // header alone is not a response
  ASSERT_TRUE(reassembler.Feed(FrameOfRecords({"ab", "cd"})).ok());
  ASSERT_TRUE(reassembler.Feed(FrameOfRecords({"ef"})).ok());
  EXPECT_FALSE(reassembler.done());  // truncation before the terminal frame
  ASSERT_TRUE(reassembler.Feed(FrameOfStatus(StatusCode::kOk, "")).ok());
  ASSERT_TRUE(reassembler.done());
  EXPECT_TRUE(reassembler.response().ok());
  EXPECT_EQ(reassembler.response().body, "abcdef");
  EXPECT_TRUE(reassembler.has_header());
  EXPECT_EQ(reassembler.kind(), AnalysisKind::kWorstCase);
  EXPECT_EQ(reassembler.query_number(), 6);
}

TEST(ResponseReassemblerTest, GrammarViolationsAreTypedErrors) {
  {
    ResponseReassembler r;  // records before the header
    EXPECT_EQ(r.Feed(FrameOfRecords({"x"})).code(),
              StatusCode::kInvalidArgument);
  }
  {
    ResponseReassembler r;  // duplicate header
    ASSERT_TRUE(r.Feed(FrameOfHeader()).ok());
    EXPECT_EQ(r.Feed(FrameOfHeader()).code(), StatusCode::kInvalidArgument);
  }
  {
    ResponseReassembler r;  // frames after the terminal status
    ASSERT_TRUE(r.Feed(FrameOfHeader()).ok());
    ASSERT_TRUE(r.Feed(FrameOfStatus(StatusCode::kOk, "")).ok());
    EXPECT_EQ(r.Feed(FrameOfRecords({"late"})).code(),
              StatusCode::kInvalidArgument);
  }
  {
    ResponseReassembler r;  // a lone OK status has no body to deliver
    EXPECT_EQ(r.Feed(FrameOfStatus(StatusCode::kOk, "")).code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(ResponseReassemblerTest, LoneErrorStatusCompletesTheStream) {
  // The one sanctioned header-less shape: a request rejected before
  // analysis arrives as a single error status frame.
  ResponseReassembler reassembler;
  ASSERT_TRUE(
      reassembler.Feed(FrameOfStatus(StatusCode::kUnavailable, "shed")).ok());
  ASSERT_TRUE(reassembler.done());
  EXPECT_FALSE(reassembler.has_header());
  EXPECT_EQ(reassembler.response().code, StatusCode::kUnavailable);
  EXPECT_EQ(reassembler.response().body, "shed");
}

// ---------------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------------

TEST(InProcessTransportTest, FramesCrossInOrderAndCloseIsEof) {
  auto [client, server] = InProcessTransport::CreatePair();
  ASSERT_TRUE(client->SendFrame("one").ok());
  ASSERT_TRUE(client->SendFrame("two").ok());
  Result<std::string> a = server->RecvFrame();
  Result<std::string> b = server->RecvFrame();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, "one");
  EXPECT_EQ(*b, "two");

  ASSERT_TRUE(server->SendFrame("reply").ok());
  client->Close();
  // Buffered frames still drain after close...
  Result<std::string> reply = client->RecvFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "reply");
  // ...then the stream reports a clean end, and sends are refused.
  EXPECT_EQ(server->RecvFrame().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(server->SendFrame("late").code(), StatusCode::kUnavailable);
}

TEST(InProcessTransportTest, OversizedFrameIsRejected) {
  auto [client, server] = InProcessTransport::CreatePair();
  const std::string huge(kMaxFrameBytes + 1, 'x');
  EXPECT_EQ(client->SendFrame(huge).code(), StatusCode::kInvalidArgument);
  (void)server;
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

TEST(AdmissionTest, RejectsWhenSlotsAndQueueAreFull) {
  AdmissionController admission(/*max_inflight=*/1, /*max_queued=*/0);
  ASSERT_TRUE(admission.Admit().ok());
  const Status overflow = admission.Admit();
  EXPECT_EQ(overflow.code(), StatusCode::kUnavailable);
  admission.Release();
  EXPECT_TRUE(admission.Admit().ok());
  admission.Release();

  const AdmissionStats stats = admission.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.peak_inflight, 1u);
}

TEST(AdmissionTest, QueuedWaiterGetsSlotOnRelease) {
  AdmissionController admission(1, 1);
  ASSERT_TRUE(admission.Admit().ok());
  Status waiter_result = Status::Internal("not yet run");
  std::thread waiter([&admission, &waiter_result] {
    waiter_result = admission.Admit();
  });
  // The waiter parks in the bounded queue; releasing the slot admits it.
  AdmissionStats stats = admission.stats();
  for (int i = 0; i < 5000 && stats.queued == 0; ++i) {
    std::this_thread::yield();
    stats = admission.stats();
  }
  EXPECT_EQ(stats.queued, 1u);
  admission.Release();
  waiter.join();
  EXPECT_TRUE(waiter_result.ok());
  admission.Release();
  EXPECT_EQ(admission.stats().peak_queued, 1u);
}

TEST(AdmissionTest, CloseRejectsWaitersAndFutureAdmits) {
  AdmissionController admission(1, 4);
  ASSERT_TRUE(admission.Admit().ok());
  Status waiter_result = Status::Ok();
  std::thread waiter([&admission, &waiter_result] {
    waiter_result = admission.Admit();
  });
  AdmissionStats stats = admission.stats();
  for (int i = 0; i < 5000 && stats.queued == 0; ++i) {
    std::this_thread::yield();
    stats = admission.stats();
  }
  admission.Close();
  waiter.join();
  EXPECT_EQ(waiter_result.code(), StatusCode::kUnavailable);
  EXPECT_EQ(admission.Admit().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Server fixtures
// ---------------------------------------------------------------------------

/// The quick-mode analysis budget (matches bench_util's quick preset) so
/// a full request costs tens of milliseconds, not seconds.
DispatcherOptions QuickDispatcherOptions(runtime::ThreadPool* pool) {
  DispatcherOptions options;
  options.discovery.random_samples = 16;
  options.discovery.sampled_vertices = 48;
  options.discovery.bisection_depth = 3;
  options.discovery.completeness_rounds = 1;
  options.pool = pool;
  return options;
}

AnalysisRequest MakeRequest(AnalysisKind kind, storage::LayoutPolicy policy,
                            uint16_t query, std::vector<double> deltas) {
  AnalysisRequest request;
  request.kind = kind;
  request.policy = policy;
  request.query_number = query;
  request.deltas = std::move(deltas);
  return request;
}

/// A request mix covering all three analysis kinds, two layouts, and two
/// queries, sized for repeated execution.
std::vector<AnalysisRequest> TestRequests() {
  return {
      MakeRequest(AnalysisKind::kDiscovery,
                  storage::LayoutPolicy::kSharedDevice, 1, {100.0}),
      MakeRequest(AnalysisKind::kGtcSeries,
                  storage::LayoutPolicy::kSharedDevice, 6, {2.0, 10.0, 100.0}),
      MakeRequest(AnalysisKind::kWorstCase,
                  storage::LayoutPolicy::kPerTableColocated, 6, {100.0}),
      MakeRequest(AnalysisKind::kGtcSeries,
                  storage::LayoutPolicy::kSharedDevice, 1, {10.0, 1000.0}),
  };
}

/// Runs a client session over an in-process pair against `server` (the
/// server half runs on its own thread) and returns one response per
/// request, in request order.
std::vector<AnalysisResponse> RunSession(
    Server& server, const std::vector<AnalysisRequest>& requests) {
  auto [client, server_end] = InProcessTransport::CreatePair();
  std::unique_ptr<FrameTransport> server_transport = std::move(server_end);
  std::thread server_thread([&server, &server_transport] {
    Session session(server, std::move(server_transport));
    const Status st = session.Run();
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  std::vector<AnalysisResponse> responses;
  for (const AnalysisRequest& request : requests) {
    Result<AnalysisResponse> response = Call(*client, request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    responses.push_back(response.ok() ? *response : AnalysisResponse{});
  }
  client->Close();
  server_thread.join();
  return responses;
}

// ---------------------------------------------------------------------------
// The headline invariant: interleaved concurrent sessions == serial bytes
// ---------------------------------------------------------------------------

TEST(ServeEquivalenceTest, ConcurrentSessionsMatchSerialByteForByte) {
  const std::vector<AnalysisRequest> requests = TestRequests();

  // Serial reference: fresh server, one session, requests in order.
  std::vector<AnalysisResponse> reference;
  {
    runtime::ThreadPool pool(1);
    ServerOptions options;
    options.dispatcher = QuickDispatcherOptions(&pool);
    Server server(options);
    reference = RunSession(server, requests);
  }
  ASSERT_EQ(reference.size(), requests.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    ASSERT_TRUE(reference[i].ok())
        << "request " << i << ": " << reference[i].body;
    EXPECT_FALSE(reference[i].body.empty());
  }

  // Concurrent: three sessions, each issuing the full request list
  // starting at a different rotation, against one shared server — every
  // request is in flight against a cache some other session may be
  // warming. Repeat at thread counts 1 and 3.
  for (const size_t threads : {size_t{1}, size_t{3}}) {
    runtime::ThreadPool pool(threads);
    ServerOptions options;
    options.dispatcher = QuickDispatcherOptions(&pool);
    Server server(options);

    const size_t kSessions = 3;
    std::vector<std::vector<AnalysisResponse>> responses(kSessions);
    std::vector<std::vector<size_t>> order(kSessions);
    std::vector<std::thread> clients;
    for (size_t s = 0; s < kSessions; ++s) {
      for (size_t i = 0; i < requests.size(); ++i) {
        order[s].push_back((s + i) % requests.size());
      }
      clients.emplace_back([&, s] {
        std::vector<AnalysisRequest> rotated;
        for (size_t idx : order[s]) rotated.push_back(requests[idx]);
        responses[s] = RunSession(server, rotated);
      });
    }
    for (std::thread& t : clients) t.join();

    for (size_t s = 0; s < kSessions; ++s) {
      ASSERT_EQ(responses[s].size(), requests.size());
      for (size_t i = 0; i < order[s].size(); ++i) {
        const AnalysisResponse& got = responses[s][i];
        const AnalysisResponse& want = reference[order[s][i]];
        EXPECT_EQ(got.code, want.code)
            << "threads=" << threads << " session=" << s << " slot=" << i;
        EXPECT_EQ(got.body, want.body)
            << "threads=" << threads << " session=" << s << " slot=" << i;
      }
    }

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.admission.admitted, kSessions * requests.size());
    EXPECT_EQ(stats.admission.rejected, 0u);
    EXPECT_EQ(stats.dispatcher.requests, kSessions * requests.size());
    // The shared cache observed cross-request hits: the second and third
    // session of each request replay probe points the first computed.
    EXPECT_GT(stats.dispatcher.cache.hits, 0u);
  }
}

// ---------------------------------------------------------------------------
// Admission at the server level
// ---------------------------------------------------------------------------

TEST(ServerTest, SaturatedAdmissionReturnsTypedUnavailable) {
  runtime::ThreadPool pool(1);
  ServerOptions options;
  options.dispatcher = QuickDispatcherOptions(&pool);
  options.max_inflight = 1;
  options.max_queued = 0;
  Server server(options);

  // Occupy the only slot directly, then every request must shed with a
  // typed kUnavailable response — never a hang, never a crash.
  ASSERT_TRUE(server.admission().Admit().ok());
  const AnalysisRequest request = TestRequests()[1];
  const AnalysisResponse rejected = server.Handle(request);
  EXPECT_EQ(rejected.code, StatusCode::kUnavailable);
  EXPECT_FALSE(rejected.body.empty());
  server.admission().Release();

  const AnalysisResponse accepted = server.Handle(request);
  EXPECT_TRUE(accepted.ok()) << accepted.body;

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.admission.rejected, 1u);
  EXPECT_EQ(stats.admission.admitted, 2u);  // direct Admit + request
}

TEST(ServerTest, ShutdownRejectsNewRequestsAndQuiesces) {
  runtime::ThreadPool pool(3);
  ServerOptions options;
  options.dispatcher = QuickDispatcherOptions(&pool);
  Server server(options);
  const AnalysisRequest request = TestRequests()[2];
  EXPECT_TRUE(server.Handle(request).ok());
  server.Shutdown();
  const AnalysisResponse after = server.Handle(request);
  EXPECT_EQ(after.code, StatusCode::kUnavailable);
  server.Shutdown();  // idempotent
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST(ServerTest, RequestDeadlineSurfacesAsTypedDeadlineExceeded) {
  // Latency faults on a manual clock charge virtual time to every probe;
  // a request-level deadline smaller than one probe's latency must spend
  // its budget and come back as a typed kDeadlineExceeded response. The
  // manual clock makes this deterministic and instant.
  runtime::resilience::ManualClock clock;
  runtime::ThreadPool pool(1);
  ServerOptions options;
  options.dispatcher = QuickDispatcherOptions(&pool);
  options.dispatcher.clock = &clock;
  options.dispatcher.fault_injection = true;
  options.dispatcher.faults.fault_rate = 1.0;
  options.dispatcher.faults.max_burst = 1;
  options.dispatcher.faults.weight_transient = 0.0;
  options.dispatcher.faults.weight_latency = 1.0;
  options.dispatcher.faults.latency_nanos = 1000;
  Server server(options);

  AnalysisRequest request = TestRequests()[1];
  request.deadline_ns = 500;  // less than one probe's injected latency
  const AnalysisResponse response = server.Handle(request);
  EXPECT_EQ(response.code, StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(response.body.empty());

  // The same request with room to breathe succeeds: the injected
  // latencies only age the clock, and each key faults once.
  AnalysisRequest relaxed = TestRequests()[1];
  relaxed.deadline_ns = 0;  // unlimited
  const AnalysisResponse ok = server.Handle(relaxed);
  EXPECT_TRUE(ok.ok()) << ok.body;
}

// ---------------------------------------------------------------------------
// Sessions and malformed frames
// ---------------------------------------------------------------------------

TEST(SessionTest, MalformedFrameGetsTypedErrorThenClose) {
  runtime::ThreadPool pool(1);
  ServerOptions options;
  options.dispatcher = QuickDispatcherOptions(&pool);
  Server server(options);

  auto [client, server_end] = InProcessTransport::CreatePair();
  std::unique_ptr<FrameTransport> server_transport = std::move(server_end);
  std::thread server_thread([&server, &server_transport] {
    Session session(server, std::move(server_transport));
    const Status st = session.Run();
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  });

  ASSERT_TRUE(client->SendFrame("not a request").ok());
  Result<std::string> frame = client->RecvFrame();
  ASSERT_TRUE(frame.ok());
  const Result<AnalysisResponse> response = DecodeResponse(*frame);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kInvalidArgument);
  // The session drops the connection after a framing error.
  EXPECT_EQ(client->RecvFrame().status().code(), StatusCode::kNotFound);
  server_thread.join();
}

// ---------------------------------------------------------------------------
// Protocol v2 over real sessions
// ---------------------------------------------------------------------------

TEST(SessionV2Test, StreamedResponsesMatchV1ByteForByte) {
  // One server, one session, both protocol versions interleaved: for every
  // request in the mix the reassembled v2 body must equal the v1 body
  // byte for byte — the frame stream is a transport detail, not part of
  // the analysis function.
  runtime::ThreadPool pool(3);
  ServerOptions options;
  options.dispatcher = QuickDispatcherOptions(&pool);
  Server server(options);

  auto [client, server_end] = InProcessTransport::CreatePair();
  std::unique_ptr<FrameTransport> server_transport = std::move(server_end);
  std::thread server_thread([&server, &server_transport] {
    Session session(server, std::move(server_transport));
    const Status st = session.Run();
    EXPECT_TRUE(st.ok()) << st.ToString();
  });

  for (const AnalysisRequest& request : TestRequests()) {
    const Result<AnalysisResponse> v1 = Call(*client, request);
    ASSERT_TRUE(v1.ok()) << v1.status().ToString();
    ASSERT_TRUE(v1->ok()) << v1->body;
    const Result<AnalysisResponse> v2 = CallV2(*client, request);
    ASSERT_TRUE(v2.ok()) << v2.status().ToString();
    EXPECT_EQ(v2->code, v1->code);
    EXPECT_EQ(v2->body, v1->body);
    EXPECT_FALSE(v2->body.empty());
  }
  client->Close();
  server_thread.join();
}

TEST(SessionV2Test, ExplicitBoxRunsAndDimsMismatchIsTyped) {
  runtime::ThreadPool pool(1);
  ServerOptions options;
  options.dispatcher = QuickDispatcherOptions(&pool);
  Server server(options);

  auto [client, server_end] = InProcessTransport::CreatePair();
  std::unique_ptr<FrameTransport> server_transport = std::move(server_end);
  std::thread server_thread([&server, &server_transport] {
    Session session(server, std::move(server_transport));
    const Status st = session.Run();
    EXPECT_TRUE(st.ok()) << st.ToString();
  });

  // The 3-dim box matches the shared-device space: real analysis runs.
  AnalysisRequest request = MakeRequest(
      AnalysisKind::kWorstCase, storage::LayoutPolicy::kSharedDevice, 6,
      {100.0});
  request.version = kProtocolVersionV2;
  request.box = TestBox();
  const Result<AnalysisResponse> ok = CallV2(*client, request);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_TRUE(ok->ok()) << ok->body;
  EXPECT_FALSE(ok->body.empty());

  // A 2-dim box cannot span the 3-dim shared-device space: a typed error
  // naming the mismatch, session intact.
  const Result<core::Box> narrow = core::Box::Validated(
      core::CostVector({0.5, 0.25}), core::CostVector({8.0, 16.0}));
  ASSERT_TRUE(narrow.ok()) << narrow.status().ToString();
  request.box = *narrow;
  const Result<AnalysisResponse> mismatch = CallV2(*client, request);
  ASSERT_TRUE(mismatch.ok()) << mismatch.status().ToString();
  EXPECT_EQ(mismatch->code, StatusCode::kInvalidArgument);
  EXPECT_NE(mismatch->body.find("dimension"), std::string::npos)
      << mismatch->body;

  // The session survived the typed rejection: the next request works.
  request.box = TestBox();
  const Result<AnalysisResponse> again = CallV2(*client, request);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->body, ok->body);

  client->Close();
  server_thread.join();
}

TEST(SessionV2Test, MalformedV2FrameGetsLoneStatusFrameThenClose) {
  runtime::ThreadPool pool(1);
  ServerOptions options;
  options.dispatcher = QuickDispatcherOptions(&pool);
  Server server(options);

  auto [client, server_end] = InProcessTransport::CreatePair();
  std::unique_ptr<FrameTransport> server_transport = std::move(server_end);
  std::thread server_thread([&server, &server_transport] {
    Session session(server, std::move(server_transport));
    const Status st = session.Run();
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  });

  // First byte 2: the peer was speaking v2, so the error comes back as a
  // lone v2 status frame (which a fresh reassembler accepts as terminal).
  std::string garbage = "garbage";
  garbage[0] = static_cast<char>(kProtocolVersionV2);
  ASSERT_TRUE(client->SendFrame(garbage).ok());
  Result<std::string> reply = client->RecvFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ResponseReassembler reassembler;
  ASSERT_TRUE(reassembler.Feed(*reply).ok());
  ASSERT_TRUE(reassembler.done());
  EXPECT_EQ(reassembler.response().code, StatusCode::kInvalidArgument);
  EXPECT_FALSE(reassembler.response().body.empty());
  // The session drops the connection after a framing error.
  EXPECT_EQ(client->RecvFrame().status().code(), StatusCode::kNotFound);
  server_thread.join();
}

// ---------------------------------------------------------------------------
// Unix-socket transport end to end
// ---------------------------------------------------------------------------

TEST(SocketTransportTest, SocketSessionMatchesInProcessBytes) {
  const std::string path = "costsense_serve_test.sock";
  const AnalysisRequest request = TestRequests()[2];

  // In-process reference bytes.
  AnalysisResponse reference;
  {
    runtime::ThreadPool pool(1);
    ServerOptions options;
    options.dispatcher = QuickDispatcherOptions(&pool);
    Server server(options);
    reference = RunSession(server, {request})[0];
  }
  ASSERT_TRUE(reference.ok()) << reference.body;

  // The same request over a real Unix-domain socket against a fresh
  // server must produce the same bytes: the transport is not part of the
  // analysis function.
  runtime::ThreadPool pool(1);
  ServerOptions options;
  options.dispatcher = QuickDispatcherOptions(&pool);
  Server server(options);
  Result<std::unique_ptr<SocketListener>> listener = SocketListener::Bind(path);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  std::thread accept_thread([&server, &listener] {
    const Status st = server.ServeBlocking(**listener, /*max_sessions=*/1);
    EXPECT_TRUE(st.ok()) << st.ToString();
  });

  Result<std::unique_ptr<SocketTransport>> client = ConnectUnixSocket(path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<AnalysisResponse> response = Call(**client, request);
  (*client)->Close();
  accept_thread.join();
  (*listener)->Close();

  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, reference.code);
  EXPECT_EQ(response->body, reference.body);
  EXPECT_EQ(server.stats().sessions, 1u);
}

// ---------------------------------------------------------------------------
// Bounded drain and the idle watchdog
// ---------------------------------------------------------------------------

/// Opens a session against `server` whose client never sends anything —
/// the wedged peer the drain deadline and idle watchdog exist for.
struct WedgedSession {
  std::unique_ptr<InProcessTransport> client;
  std::thread thread;
  Status run_status = Status::Internal("not finished");

  explicit WedgedSession(Server& server) {
    auto [client_end, server_end] = InProcessTransport::CreatePair();
    client = std::move(client_end);
    std::unique_ptr<FrameTransport> transport = std::move(server_end);
    thread = std::thread([this, &server, t = std::move(transport)]() mutable {
      Session session(server, std::move(t));
      run_status = session.Run();
    });
    // The session is reachable by drain/watchdog once registered.
    while (server.stats().active_sessions == 0) std::this_thread::yield();
  }

  ~WedgedSession() {
    client->Close();
    if (thread.joinable()) thread.join();
  }
};

TEST(ServerDrainTest, DrainTimeoutForcesWedgedSession) {
  runtime::resilience::ManualClock clock;
  runtime::ThreadPool pool(1);
  ServerOptions options;
  options.dispatcher = QuickDispatcherOptions(&pool);
  options.dispatcher.clock = &clock;
  options.drain_timeout_ns = 5'000'000;  // 5 virtual ms
  Server server(options);

  WedgedSession wedged(server);
  // Shutdown must return: the drain polls the virtual clock to its
  // deadline, then force-closes the straggler instead of waiting forever.
  server.Shutdown();

  const ServerStats stats = server.stats();
  EXPECT_TRUE(stats.shutdown.ran);
  EXPECT_EQ(stats.shutdown.forced_sessions, 1u);
  EXPECT_GE(stats.shutdown.drain_wait_ns, options.drain_timeout_ns);

  // The forced session exits as a clean end of stream on both sides.
  wedged.thread.join();
  EXPECT_TRUE(wedged.run_status.ok()) << wedged.run_status.ToString();
  EXPECT_EQ(wedged.client->RecvFrame().status().code(), StatusCode::kNotFound);
}

TEST(ServerDrainTest, GracefulCloseIsNotForced) {
  runtime::resilience::ManualClock clock;
  runtime::ThreadPool pool(1);
  ServerOptions options;
  options.dispatcher = QuickDispatcherOptions(&pool);
  options.dispatcher.clock = &clock;
  options.drain_timeout_ns = 5'000'000;
  Server server(options);

  {
    WedgedSession session(server);
    session.client->Close();
    session.thread.join();
  }
  while (server.stats().active_sessions != 0) std::this_thread::yield();

  server.Shutdown();
  const ServerStats stats = server.stats();
  EXPECT_TRUE(stats.shutdown.ran);
  EXPECT_EQ(stats.shutdown.forced_sessions, 0u);
}

TEST(ServerDrainTest, WedgedSocketSessionCannotWedgeServeBlocking) {
  // End to end over a real socket on the real clock: one client connects
  // and sends nothing; ServeBlocking's join of that session thread is
  // bounded by the drain deadline.
  const std::string path = "costsense_drain_test.sock";
  runtime::ThreadPool pool(1);
  ServerOptions options;
  options.dispatcher = QuickDispatcherOptions(&pool);
  options.drain_timeout_ns = 50'000'000;  // 50 real ms
  Server server(options);

  Result<std::unique_ptr<SocketListener>> listener = SocketListener::Bind(path);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  Result<std::unique_ptr<SocketTransport>> client = ConnectUnixSocket(path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // max_sessions=1: the accept loop exits after this connection and falls
  // into the drain, where only the deadline unwedges the silent client.
  const Status served = server.ServeBlocking(**listener, /*max_sessions=*/1);
  EXPECT_TRUE(served.ok()) << served.ToString();
  (*listener)->Close();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shutdown.forced_sessions, 1u);
  EXPECT_GE(stats.shutdown.drain_wait_ns, options.drain_timeout_ns);
}

TEST(ServerWatchdogTest, ReapsOnlySessionsIdlePastTimeout) {
  runtime::resilience::ManualClock clock;
  runtime::ThreadPool pool(1);
  ServerOptions options;
  options.dispatcher = QuickDispatcherOptions(&pool);
  options.dispatcher.clock = &clock;
  options.idle_timeout_ns = 1'000'000'000;  // 1 virtual second
  Server server(options);

  WedgedSession session(server);
  // 900 ms idle: under the timeout, nothing reaped.
  clock.Advance(900'000'000);
  EXPECT_EQ(server.ReapIdleSessions(), 0u);

  // Activity resets the idle clock: a request stamps the session.
  const Result<AnalysisResponse> response =
      Call(*session.client, TestRequests()[0]);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  clock.Advance(900'000'000);  // 900 ms since the request
  EXPECT_EQ(server.ReapIdleSessions(), 0u);

  // 1.1 s since the last activity: reaped, and the client sees the drop.
  clock.Advance(200'000'000);
  EXPECT_EQ(server.ReapIdleSessions(), 1u);
  session.thread.join();
  EXPECT_TRUE(session.run_status.ok()) << session.run_status.ToString();
  EXPECT_EQ(session.client->RecvFrame().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(server.stats().idle_reaped, 1u);
}

TEST(ServerWatchdogTest, ZeroTimeoutNeverReaps) {
  runtime::resilience::ManualClock clock;
  runtime::ThreadPool pool(1);
  ServerOptions options;
  options.dispatcher = QuickDispatcherOptions(&pool);
  options.dispatcher.clock = &clock;
  Server server(options);  // idle_timeout_ns = 0

  WedgedSession session(server);
  clock.Advance(3'600'000'000'000ULL);  // an hour of virtual idleness
  EXPECT_EQ(server.ReapIdleSessions(), 0u);
  EXPECT_EQ(server.stats().idle_reaped, 0u);
}

// ---------------------------------------------------------------------------
// Periodic stats snapshots
// ---------------------------------------------------------------------------

TEST(SnapshotterTest, TickOnceWritesFlushedRecordsAndDrivesWatchdog) {
  const std::string path = "snapshotter_test.jsonl";
  {
    std::ofstream truncate(path, std::ios::trunc);
  }
  runtime::resilience::ManualClock clock;
  runtime::ThreadPool pool(1);
  ServerOptions options;
  options.dispatcher = QuickDispatcherOptions(&pool);
  options.dispatcher.clock = &clock;
  options.idle_timeout_ns = 1'000'000'000;
  Server server(options);

  engine::JsonWriter writer(path);
  SnapshotterOptions snapshot_options;  // interval 0: Start() is a no-op
  StatsSnapshotter snapshotter(server, writer, snapshot_options);
  snapshotter.Start();

  EXPECT_EQ(snapshotter.TickOnce(), 0u);  // no sessions, nothing to reap
  {
    WedgedSession session(server);
    clock.Advance(2'000'000'000);
    // The periodic tick runs the watchdog, then snapshots the stats.
    EXPECT_EQ(snapshotter.TickOnce(), 1u);
    session.thread.join();
  }
  EXPECT_EQ(snapshotter.ticks(), 2u);
  snapshotter.Stop();  // idempotent with no thread running

  // Every tick is already flushed: an aborted server keeps them all.
  const std::string written = [&path] {
    std::ifstream in(path);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }();
  EXPECT_NE(written.find("\"bench\":\"serve-stats\""), std::string::npos);
  EXPECT_NE(written.find("\"snapshot_seq\":1"), std::string::npos);
  EXPECT_NE(written.find("\"snapshot_seq\":2"), std::string::npos);
  EXPECT_NE(written.find("\"idle_reaped\":1"), std::string::npos);
}

}  // namespace
}  // namespace costsense::serve
