#include "sim/calibrate.h"

#include <gtest/gtest.h>

#include "sim/replay.h"

namespace costsense::sim {
namespace {

TEST(CalibrateTest, RecoversParametersFromSimulatedTimings) {
  // Time the calibration workload on the positional simulator, then fit
  // the additive model: the fitted d_s must land near the geometry's
  // equivalent repositioning cost and d_t near its transfer rate.
  const DiskGeometry disk;
  Rng rng(5);
  const uint64_t device_pages =
      static_cast<uint64_t>(disk.pages_per_cylinder) * disk.num_cylinders;
  const std::vector<IoTrace> workload =
      MakeCalibrationWorkload(device_pages, rng);
  std::vector<double> times;
  for (const IoTrace& t : workload) {
    times.push_back(Replay(t, {disk}).total_time);
  }
  const Result<CalibrationResult> fit =
      CalibrateAdditiveModel(workload, times);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_NEAR(fit->transfer_cost, disk.transfer_per_page,
              0.15 * disk.transfer_per_page);
  EXPECT_NEAR(fit->seek_cost, disk.EquivalentSeekCost(),
              0.30 * disk.EquivalentSeekCost());
  EXPECT_LT(fit->rms_relative_error, 0.15);
}

TEST(CalibrateTest, ExactRecoveryWhenWorldIsAdditive) {
  // If measurements come from the additive model itself, the fit is exact.
  Rng rng(7);
  const std::vector<IoTrace> workload = MakeCalibrationWorkload(1 << 24, rng);
  const double ds = 24.1, dt = 9.0;
  std::vector<double> times;
  for (const IoTrace& t : workload) {
    times.push_back(AdditiveEstimate(t, ds, dt));
  }
  const Result<CalibrationResult> fit =
      CalibrateAdditiveModel(workload, times);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->seek_cost, ds, 1e-6);
  EXPECT_NEAR(fit->transfer_cost, dt, 1e-6);
  EXPECT_NEAR(fit->rms_relative_error, 0.0, 1e-9);
}

TEST(CalibrateTest, DegradedDeviceShowsUpInParameters) {
  // A 10x-degraded device yields ~10x fitted parameters: the refreshed
  // numbers a monitoring agent would hand to the optimizer.
  DiskGeometry slow;
  slow.min_seek *= 10;
  slow.max_seek *= 10;
  slow.rotation *= 10;
  slow.transfer_per_page *= 10;
  Rng rng(9);
  const uint64_t device_pages =
      static_cast<uint64_t>(slow.pages_per_cylinder) * slow.num_cylinders;
  const std::vector<IoTrace> workload =
      MakeCalibrationWorkload(device_pages, rng);
  std::vector<double> times;
  for (const IoTrace& t : workload) {
    times.push_back(Replay(t, {slow}).total_time);
  }
  const auto fit = CalibrateAdditiveModel(workload, times);
  ASSERT_TRUE(fit.ok());
  const DiskGeometry healthy;
  EXPECT_NEAR(fit->transfer_cost / healthy.transfer_per_page, 10.0, 2.0);
}

TEST(CalibrateTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(CalibrateAdditiveModel({}, {}).ok());
  IoTrace t;
  AppendSequential(t, 0, 0, 100, 32);
  EXPECT_FALSE(CalibrateAdditiveModel({t}, {1.0}).ok());
  EXPECT_FALSE(CalibrateAdditiveModel({t, t}, {1.0}).ok());  // size mismatch
  // Two identical sequential traces: rank-deficient features.
  EXPECT_FALSE(CalibrateAdditiveModel({t, t}, {100.0, 100.0}).ok());
}

}  // namespace
}  // namespace costsense::sim
