#include <gtest/gtest.h>

#include "sim/replay.h"

namespace costsense::sim {
namespace {

TEST(DiskTest, SeekTimeShape) {
  const DiskGeometry d;
  EXPECT_DOUBLE_EQ(d.SeekTime(100, 100), 0.0);
  EXPECT_NEAR(d.SeekTime(0, 1), d.min_seek, 0.5);
  EXPECT_NEAR(d.SeekTime(0, d.num_cylinders - 1), d.max_seek, 0.01);
  // Monotone in distance.
  EXPECT_LT(d.SeekTime(0, 100), d.SeekTime(0, 10000));
  // Symmetric.
  EXPECT_DOUBLE_EQ(d.SeekTime(5, 500), d.SeekTime(500, 5));
}

TEST(DiskTest, CylinderMapping) {
  DiskGeometry d;
  d.pages_per_cylinder = 100;
  d.num_cylinders = 10;
  EXPECT_EQ(d.CylinderOf(0), 0u);
  EXPECT_EQ(d.CylinderOf(99), 0u);
  EXPECT_EQ(d.CylinderOf(100), 1u);
  EXPECT_EQ(d.CylinderOf(100000), 9u);  // clamped
}

TEST(DiskTest, EquivalentSeekBetweenMinAndMax) {
  const DiskGeometry d;
  EXPECT_GT(d.EquivalentSeekCost(), d.min_seek);
  EXPECT_LT(d.EquivalentSeekCost(), d.max_seek + d.rotation);
}

TEST(TraceTest, SequentialSplitsIntoExtents) {
  IoTrace t;
  AppendSequential(t, 0, 1000, 100, 32);
  ASSERT_EQ(t.size(), 4u);  // 32+32+32+4
  EXPECT_EQ(t[0].start_page, 1000u);
  EXPECT_EQ(t[3].num_pages, 4u);
  EXPECT_EQ(TotalPages(t), 100u);
}

TEST(TraceTest, RandomStaysWithinDevice) {
  IoTrace t;
  Rng rng(3);
  AppendRandom(t, 1, 500, 1000, rng);
  EXPECT_EQ(t.size(), 500u);
  for (const IoRequest& r : t) {
    EXPECT_EQ(r.device, 1);
    EXPECT_LT(r.start_page, 1000u);
    EXPECT_EQ(r.num_pages, 1u);
  }
}

TEST(ReplayTest, SequentialPaysOneRepositioning) {
  const DiskGeometry d;
  IoTrace t;
  AppendSequential(t, 0, 0, 320, 32);
  const ReplayResult r = Replay(t, {d});
  EXPECT_EQ(r.repositions, 1u);  // only the initial positioning
  EXPECT_EQ(r.pages, 320u);
  EXPECT_NEAR(r.total_time,
              d.rotation / 2 + 320 * d.transfer_per_page, 1.0);
}

TEST(ReplayTest, RandomSlowerThanSequentialForSamePages) {
  const DiskGeometry d;
  Rng rng(5);
  IoTrace seq, rnd;
  AppendSequential(seq, 0, 0, 1000, 32);
  AppendRandom(rnd, 0, 1000,
               static_cast<uint64_t>(d.pages_per_cylinder) * d.num_cylinders,
               rng);
  // With DB2's default-like 24.1 : 9.0 seek:transfer balance the gap is
  // modest (~4x) — the point is only that random is clearly slower.
  EXPECT_GT(Replay(rnd, {d}).total_time, 3.0 * Replay(seq, {d}).total_time);
}

TEST(ReplayTest, PerDeviceTimesSumToTotal) {
  const DiskGeometry d;
  Rng rng(7);
  IoTrace t;
  AppendSequential(t, 0, 0, 100, 32);
  AppendRandom(t, 1, 50, 100000, rng);
  const ReplayResult r = Replay(t, {d, d});
  EXPECT_NEAR(r.per_device_time[0] + r.per_device_time[1], r.total_time,
              1e-9);
  EXPECT_GT(r.per_device_time[0], 0.0);
  EXPECT_GT(r.per_device_time[1], 0.0);
}

TEST(ReplayTest, AdditiveTracksUniformRandomWithinTolerance) {
  // The paper calls the two-parameter model "a good first approximation":
  // for uniformly random single-page I/O it should sit within ~25% of the
  // positional simulation when d_s is the geometry's equivalent seek.
  const DiskGeometry d;
  Rng rng(9);
  IoTrace t;
  AppendRandom(t, 0, 20000,
               static_cast<uint64_t>(d.pages_per_cylinder) * d.num_cylinders,
               rng);
  const double simulated = Replay(t, {d}).total_time;
  const double additive =
      AdditiveEstimate(t, d.EquivalentSeekCost(), d.transfer_per_page);
  EXPECT_NEAR(additive / simulated, 1.0, 0.25);
}

TEST(ReplayTest, AdditiveMatchesSequentialExactly) {
  const DiskGeometry d;
  IoTrace t;
  AppendSequential(t, 0, 0, 3200, 32);
  const double additive =
      AdditiveEstimate(t, d.EquivalentSeekCost(), d.transfer_per_page);
  // One seek + transfers.
  EXPECT_NEAR(additive,
              d.EquivalentSeekCost() + 3200 * d.transfer_per_page, 1e-9);
}

}  // namespace
}  // namespace costsense::sim
