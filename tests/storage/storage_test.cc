#include <gtest/gtest.h>

#include "storage/layout.h"
#include "tpch/schema.h"

namespace costsense::storage {
namespace {

catalog::Catalog TestCatalog() { return tpch::MakeTpchCatalog(1.0); }

std::vector<int> SomeTables(const catalog::Catalog& cat, int k) {
  std::vector<int> ids;
  const char* names[] = {"lineitem", "orders", "customer", "part",
                         "supplier", "nation"};
  for (int i = 0; i < k; ++i) ids.push_back(cat.TableId(names[i]).value());
  return ids;
}

TEST(LayoutTest, SharedLayoutIsThreeResources) {
  // Paper Section 8.1.1: d_s, d_t and CPU.
  const catalog::Catalog cat = TestCatalog();
  const StorageLayout layout(LayoutPolicy::kSharedDevice, cat,
                             SomeTables(cat, 4));
  const ResourceSpace space = layout.BuildResourceSpace();
  EXPECT_EQ(space.dims(), 3u);
  EXPECT_EQ(space.granularity(), Granularity::kSplitSeekTransfer);
  // Every object maps to the single device.
  const int dev = layout.DataDevice(SomeTables(cat, 1)[0]);
  EXPECT_EQ(layout.IndexDevice(SomeTables(cat, 1)[0]), dev);
  EXPECT_EQ(layout.TempDevice(), dev);
}

TEST(LayoutTest, PerTableAndIndexIs2kPlus2) {
  // Paper Section 8.1.2: one resource per table, one per table's indexes,
  // plus temp and CPU (tied d_s:d_t ratio).
  const catalog::Catalog cat = TestCatalog();
  for (int k = 1; k <= 6; ++k) {
    const StorageLayout layout(LayoutPolicy::kPerTableAndIndex, cat,
                               SomeTables(cat, k));
    const ResourceSpace space = layout.BuildResourceSpace();
    EXPECT_EQ(space.dims(), static_cast<size_t>(2 * k + 2)) << "k=" << k;
    EXPECT_EQ(space.granularity(), Granularity::kTiedPerDevice);
  }
}

TEST(LayoutTest, ColocatedIsKPlus2) {
  // Paper Section 8.1.3: one resource per table (indexes colocated), plus
  // temp and CPU.
  const catalog::Catalog cat = TestCatalog();
  for (int k = 1; k <= 6; ++k) {
    const StorageLayout layout(LayoutPolicy::kPerTableColocated, cat,
                               SomeTables(cat, k));
    EXPECT_EQ(layout.BuildResourceSpace().dims(),
              static_cast<size_t>(k + 2));
  }
}

TEST(LayoutTest, SeparateLayoutSeparatesDataAndIndex) {
  const catalog::Catalog cat = TestCatalog();
  const auto ids = SomeTables(cat, 2);
  const StorageLayout layout(LayoutPolicy::kPerTableAndIndex, cat, ids);
  EXPECT_NE(layout.DataDevice(ids[0]), layout.IndexDevice(ids[0]));
  EXPECT_NE(layout.DataDevice(ids[0]), layout.DataDevice(ids[1]));
  EXPECT_NE(layout.TempDevice(), layout.DataDevice(ids[0]));
}

TEST(LayoutTest, ColocatedSharesDataAndIndexDevice) {
  const catalog::Catalog cat = TestCatalog();
  const auto ids = SomeTables(cat, 2);
  const StorageLayout layout(LayoutPolicy::kPerTableColocated, cat, ids);
  EXPECT_EQ(layout.DataDevice(ids[0]), layout.IndexDevice(ids[0]));
  EXPECT_NE(layout.DataDevice(ids[0]), layout.DataDevice(ids[1]));
}

TEST(ResourceSpaceTest, SplitChargesRawCounts) {
  const catalog::Catalog cat = TestCatalog();
  const StorageLayout layout(LayoutPolicy::kSharedDevice, cat,
                             SomeTables(cat, 1));
  const ResourceSpace space = layout.BuildResourceSpace();
  core::UsageVector u = space.ZeroUsage();
  space.ChargeIo(u, 0, /*seeks=*/2.0, /*pages=*/3.0);
  space.ChargeCpu(u, 1000.0);
  EXPECT_DOUBLE_EQ(u[0], 2.0);
  EXPECT_DOUBLE_EQ(u[1], 3.0);
  EXPECT_DOUBLE_EQ(u[space.cpu_dim()], 1000.0);

  // Paper Section 3.1's example: 2 seeks + 3 blocks cost
  // 2*c_ds + 3*c_dt under the baseline costs.
  const core::CostVector c = space.BaselineCosts();
  EXPECT_DOUBLE_EQ(core::TotalCost(u, c), 2 * 24.1 + 3 * 9.0 + 1000 * 1e-6);
}

TEST(ResourceSpaceTest, TiedChargesPreWeightedTimeUnits) {
  const catalog::Catalog cat = TestCatalog();
  const StorageLayout layout(LayoutPolicy::kPerTableColocated, cat,
                             SomeTables(cat, 1));
  const ResourceSpace space = layout.BuildResourceSpace();
  core::UsageVector u = space.ZeroUsage();
  space.ChargeIo(u, 0, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(u[0], 2 * 24.1 + 3 * 9.0);
  // Tied device baselines are unit multipliers.
  EXPECT_DOUBLE_EQ(space.BaselineCosts()[0], 1.0);
}

TEST(ResourceSpaceTest, DimClassesForComplementarityAnalysis) {
  const catalog::Catalog cat = TestCatalog();
  const auto ids = SomeTables(cat, 2);
  const StorageLayout layout(LayoutPolicy::kPerTableAndIndex, cat, ids);
  const ResourceSpace space = layout.BuildResourceSpace();
  const auto& dims = space.dim_info();
  ASSERT_EQ(dims.size(), 6u);
  EXPECT_EQ(dims[0].cls, core::DimClass::kTable);
  EXPECT_EQ(dims[0].table_id, ids[0]);
  EXPECT_EQ(dims[1].cls, core::DimClass::kIndex);
  EXPECT_EQ(dims[1].table_id, ids[0]);
  EXPECT_EQ(dims[4].cls, core::DimClass::kTemp);
  EXPECT_EQ(dims[5].cls, core::DimClass::kCpu);
}

TEST(ResourceSpaceTest, BaselineMatchesDb2Defaults) {
  const catalog::Catalog cat = TestCatalog();
  const StorageLayout layout(LayoutPolicy::kSharedDevice, cat,
                             SomeTables(cat, 1));
  const core::CostVector c = layout.BuildResourceSpace().BaselineCosts();
  // Paper Section 8.1: d_s = 24.1, d_t = 9.0, CPU = 1e-6.
  EXPECT_DOUBLE_EQ(c[0], 24.1);
  EXPECT_DOUBLE_EQ(c[1], 9.0);
  EXPECT_DOUBLE_EQ(c[2], 1e-6);
}

}  // namespace
}  // namespace costsense::storage
