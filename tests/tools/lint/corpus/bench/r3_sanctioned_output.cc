// Fixture: bench/ is a sanctioned render path — the same output calls that
// fire R3 under src/ must stay clean here.
#include <cstdio>
#include <iostream>

namespace corpus {

void RenderFigure(double v) {
  std::cout << "figure row " << v << "\n";
  printf("%.6f\n", v);
}

}  // namespace corpus
