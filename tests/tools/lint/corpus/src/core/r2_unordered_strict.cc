// Fixture: R2 in src/core is absolute — even a justified suppression does
// not silence it, because core feeds figure/table output.
#include <string>
#include <unordered_map>

namespace corpus {

int StrictTree() {
  // costsense-lint: allow(R2, "this justification must NOT be honored in core")
  std::unordered_map<std::string, int> counts;
  return static_cast<int>(counts.size());
}

}  // namespace corpus
