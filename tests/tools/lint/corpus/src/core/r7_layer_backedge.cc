// R7 fixture: core sits below engine in the layer order, so this include
// is a back-edge the manifest does not sanction.
#include "engine/config.h"

namespace costsense::core {

int LayerBackedgeFixture() { return 1; }

}  // namespace costsense::core
