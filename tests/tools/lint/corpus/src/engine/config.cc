// Fixture: src/engine/config.* is the one sanctioned environment reader —
// the same getenv calls that fire R5 elsewhere must stay clean here.
#include <cstdlib>

namespace corpus {

const char* ReadKnob(const char* name) { return std::getenv(name); }

}  // namespace corpus
