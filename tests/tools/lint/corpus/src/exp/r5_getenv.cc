// Fixture: R5 violations — direct environment reads in library code.
// Knobs must flow through engine::EngineConfig::FromEnv; a "getenv" in a
// string or comment must NOT fire.
#include <cstdlib>

namespace corpus {

// getenv() in a comment is fine, as is "getenv(NAME)" in a string.
const char* kDoc = "never call getenv(NAME) directly";

const char* AmbientKnob() { return std::getenv("COSTSENSE_THREADS"); }

const char* HardenedKnob() { return secure_getenv("COSTSENSE_KERNEL"); }

const char* Suppressed() {
  // costsense-lint: allow(R5, "fixture demonstrating a justified suppression")
  return std::getenv("COSTSENSE_QUICK");
}

}  // namespace corpus
