// Fixture: R1 violations — ambient randomness and wall-clock reads in
// library code. Strings and comments mentioning rand() must NOT fire.
#include <chrono>
#include <cstdlib>
#include <random>

namespace corpus {

// rand() in a comment is fine, as is "srand(42)" in a string.
const char* kDoc = "call srand(42) before rand()";

int AmbientRandom() {
  std::random_device rd;
  srand(rd());
  return rand();
}

long WallClock() {
  auto now = std::chrono::system_clock::now();
  return now.time_since_epoch().count();
}

long Suppressed() {
  // costsense-lint: allow(R1, "fixture demonstrating a justified suppression")
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace corpus
