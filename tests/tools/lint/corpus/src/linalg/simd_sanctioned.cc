// Fixture: R6 sanction — src/linalg/simd* is the one tree where raw
// intrinsics are legal, so nothing here may fire.
#include <immintrin.h>

namespace corpus {

double FirstLane(const double* p) {
  const __m256d v = _mm256_loadu_pd(p);
  double lanes[4];
  _mm256_storeu_pd(lanes, v);
  return lanes[0];
}

}  // namespace corpus
