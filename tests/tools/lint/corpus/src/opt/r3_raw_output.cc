// Fixture: R3 — raw stdout writes in library code. fprintf(stderr) is the
// sanctioned diagnostic channel and must not fire.
#include <cstdio>
#include <iostream>

namespace corpus {

void Noisy(double v) {
  std::cout << "v=" << v << "\n";
  printf("v=%f\n", v);
  puts("done");
  std::fprintf(stderr, "diagnostic: %f\n", v);  // allowed
}

}  // namespace corpus
