// Fixture: R6 — raw SIMD intrinsics outside src/linalg/simd*. The include
// line, the vector type and the intrinsic call must each fire; the
// suppressed call carries a justification and must not.
#include <immintrin.h>

namespace corpus {

double SumLanes(const double* p) {
  __m256d v = _mm256_loadu_pd(p);
  double lanes[4];
  // costsense-lint: allow(R6, "fixture demonstrating a justified escape")
  _mm256_storeu_pd(lanes, v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

}  // namespace corpus
