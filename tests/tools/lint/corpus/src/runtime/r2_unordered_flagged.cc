// Fixture: R2 outside core/exp is suppressible with a justification; a
// bare use without one is a finding.
#include <string>
// costsense-lint: allow(R2, "fixture: include is justified")
#include <unordered_map>
#include <unordered_set>

namespace corpus {

int Flagged() {
  std::unordered_set<int> seen;
  return static_cast<int>(seen.size());
}

int SuppressedUse() {
  // costsense-lint: allow(R2, "point lookups only; never iterated")
  std::unordered_map<std::string, int> index;
  return static_cast<int>(index.count("x"));
}

}  // namespace corpus
