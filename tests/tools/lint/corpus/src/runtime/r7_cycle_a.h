// R7 fixture: one half of a deliberate file-level include cycle.
// Intra-module includes are fine at the layer level, but the file graph
// must still be acyclic.
#ifndef COSTSENSE_CORPUS_RUNTIME_R7_CYCLE_A_H_
#define COSTSENSE_CORPUS_RUNTIME_R7_CYCLE_A_H_

#include "runtime/r7_cycle_b.h"

namespace costsense::runtime {

struct CycleFixtureA {
  int value = 0;
};

}  // namespace costsense::runtime

#endif  // COSTSENSE_CORPUS_RUNTIME_R7_CYCLE_A_H_
