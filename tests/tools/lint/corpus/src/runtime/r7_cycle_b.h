// R7 fixture: the other half of the deliberate include cycle with
// r7_cycle_a.h.
#ifndef COSTSENSE_CORPUS_RUNTIME_R7_CYCLE_B_H_
#define COSTSENSE_CORPUS_RUNTIME_R7_CYCLE_B_H_

#include "runtime/r7_cycle_a.h"

namespace costsense::runtime {

struct CycleFixtureB {
  int value = 0;
};

}  // namespace costsense::runtime

#endif  // COSTSENSE_CORPUS_RUNTIME_R7_CYCLE_B_H_
