// Fixture: R1 keeps its normal suppression semantics in src/serve (only
// R3 is strict there) — a justified allow() silences the clock read it
// covers, while the unsuppressed neighbor still fires.
#include <chrono>

namespace corpus {

long ClockBoundary() {
  // costsense-lint: allow(R1, "TU-local timing probe; never reaches response bytes")
  const auto sanctioned = std::chrono::steady_clock::now();
  const auto leaking = std::chrono::system_clock::now();
  return leaking.time_since_epoch().count() -
         sanctioned.time_since_epoch().count();
}

}  // namespace corpus
