// Fixture: R3 in src/serve is absolute — even a justified suppression
// does not silence it. Server code speaks only through the wire protocol
// and the artifact sinks; stdout is invisible to remote clients.
#include <cstdio>

namespace corpus {

void StrictServe() {
  // costsense-lint: allow(R3, "this justification must NOT be honored in serve")
  std::printf("request admitted\n");
  std::puts("response sent");
}

}  // namespace corpus
