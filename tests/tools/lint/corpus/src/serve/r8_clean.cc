// R8 fixture: the clean counterpart. One path takes both locks atomically
// (scoped_lock groups are exempt from intra-group ordering) and the other
// always goes a before b, including through a callee — no cycle, no
// boundary crossing, zero findings.
#include <mutex>

namespace costsense::serve {

class R8CleanFixture {
 public:
  void Atomic() {
    std::scoped_lock lock(clean_a_mu_, clean_b_mu_);
    ++calls_;
  }

  void Ordered() {
    std::lock_guard<std::mutex> a(clean_a_mu_);
    Tail();
  }

 private:
  void Tail() {
    std::lock_guard<std::mutex> b(clean_b_mu_);
    ++calls_;
  }

  std::mutex clean_a_mu_;
  std::mutex clean_b_mu_;
  int calls_ = 0;
};

}  // namespace costsense::serve
