// R8 fixture: a mutex held across an oracle call. Optimize() can take
// arbitrarily long, so every other thread contending on the lock stalls
// behind one slow optimization.
#include <mutex>

namespace costsense::serve {

class R8OracleShim {
 public:
  double Optimize(int query) { return static_cast<double>(query); }
};

class R8AcrossOracleFixture {
 public:
  double Cached(int query) {
    std::lock_guard<std::mutex> lock(across_mu_);
    return oracle_shim_.Optimize(query);
  }

 private:
  std::mutex across_mu_;
  R8OracleShim oracle_shim_;
};

}  // namespace costsense::serve
