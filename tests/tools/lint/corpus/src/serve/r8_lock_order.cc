// R8 fixture: two mutexes acquired in opposite orders on two paths — the
// classic ABBA deadlock shape the lock-order graph must flag as a cycle.
#include <mutex>

namespace costsense::serve {

class R8OrderFixture {
 public:
  void ForwardPath() {
    std::lock_guard<std::mutex> a(order_a_mu_);
    std::lock_guard<std::mutex> b(order_b_mu_);
    ++calls_;
  }

  void ReversedPath() {
    std::lock_guard<std::mutex> b(order_b_mu_);
    std::lock_guard<std::mutex> a(order_a_mu_);
    ++calls_;
  }

 private:
  std::mutex order_a_mu_;
  std::mutex order_b_mu_;
  int calls_ = 0;
};

}  // namespace costsense::serve
