// Fixture: R4 — Status/Result<T>-returning declarations must carry
// [[nodiscard]]. Annotated declarations, constructors, qualified calls and
// Result-in-template-argument positions must all stay clean.
#ifndef CORPUS_R4_NODISCARD_H_
#define CORPUS_R4_NODISCARD_H_

#include <vector>

#include "common/status.h"

namespace corpus {

using costsense::Result;
using costsense::Status;

// Violations: missing [[nodiscard]].
Status Save(int id);
Result<int> Load(int id);
class Store {
 public:
  virtual Result<std::vector<double>> Fetch(int id) = 0;
  static Status Flush();
};

// Clean: annotated, including qualified spelling and template headers.
[[nodiscard]] Status SaveChecked(int id);
[[nodiscard]] costsense::Status SaveQualified(int id);
[[nodiscard]] Result<int> LoadChecked(int id);
template <typename T>
[[nodiscard]] Result<T> LoadAs(int id);

// Clean: not return-type positions.
// costsense-lint: allow(R4, "fixture: R4 honors a justified suppression")
inline Status MakeOk() { return Status::Ok(); }
std::vector<Result<int>> LoadMany(const std::vector<int>& ids);
void Consume(Status status);

}  // namespace corpus

#endif  // CORPUS_R4_NODISCARD_H_
