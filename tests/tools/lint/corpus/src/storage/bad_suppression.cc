// Fixture: SUP — suppression syntax discipline. A bare allow() without a
// justification is itself a finding AND does not silence the underlying
// violation; unknown rules and empty justifications are also rejected.
#include <cstdio>

namespace corpus {

void BareAllow() {
  // costsense-lint: allow(R3)
  printf("dropped justification\n");
}

void EmptyJustification() {
  printf("empty\n");  // costsense-lint: allow(R3, "")
}

void UnknownRule() {
  printf("bogus rule\n");  // costsense-lint: allow(R9, "no such rule")
}

void Honored() {
  // costsense-lint: allow(R3, "fixture: justified suppressions are honored")
  printf("justified\n");
}

}  // namespace corpus
