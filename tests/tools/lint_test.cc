// Tests for the costsense-lint analyzer — lexer hygiene (strings/comments
// never produce findings), suppression grammar and coverage, R4 declaration
// detection edge cases, and a fixture-corpus golden run (known-violation
// files under tests/tools/lint/corpus, compared byte-exact).
// (The directive prefix itself cannot appear in this comment: the tree
// lint parses it in every scanned file, including this one.)
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint.h"

namespace costsense::lint {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> TokenTexts(const std::string& src) {
  std::vector<std::string> out;
  for (const Token& t : Lex(src).tokens) out.push_back(t.text);
  return out;
}

int CountRule(const std::vector<Finding>& findings, Rule rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [rule](const Finding& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, StripsCommentsAndStrings) {
  const auto toks = TokenTexts(
      "int a; // rand() in a comment\n"
      "const char* s = \"srand(1) \\\" rand()\";\n"
      "/* system_clock */ char c = 'r';\n");
  EXPECT_EQ(std::count(toks.begin(), toks.end(), "rand"), 0);
  EXPECT_EQ(std::count(toks.begin(), toks.end(), "srand"), 0);
  EXPECT_EQ(std::count(toks.begin(), toks.end(), "system_clock"), 0);
  EXPECT_EQ(std::count(toks.begin(), toks.end(), "a"), 1);
}

TEST(LexerTest, RawStringsAndDigitSeparators) {
  const auto toks = TokenTexts(
      "auto s = R\"(rand() and printf())\";\n"
      "int big = 1'000'000;\n");
  EXPECT_EQ(std::count(toks.begin(), toks.end(), "rand"), 0);
  EXPECT_EQ(std::count(toks.begin(), toks.end(), "printf"), 0);
  EXPECT_EQ(std::count(toks.begin(), toks.end(), "1'000'000"), 1);
}

TEST(LexerTest, TracksLinesAndScopeResolution) {
  const LexedFile lexed = Lex("int a;\n\ncostsense::Status b;\n");
  ASSERT_GE(lexed.tokens.size(), 6u);
  EXPECT_EQ(lexed.tokens[0].line, 1);
  const Token& qual = lexed.tokens[4];
  EXPECT_EQ(qual.text, "::");
  EXPECT_EQ(qual.line, 3);
}

TEST(LexerTest, ClassifiesTrailingVersusStandaloneComments) {
  const LexedFile lexed = Lex(
      "// standalone\n"
      "int a;  // trailing\n");
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_FALSE(lexed.comments[0].trailing);
  EXPECT_TRUE(lexed.comments[1].trailing);
}

// ---------------------------------------------------------------------------
// R1 / R2 / R3 scoping
// ---------------------------------------------------------------------------

TEST(RulesTest, R1BansRandomnessOutsideRng) {
  const auto findings =
      AnalyzeSource("src/linalg/matrix.cc", "int x = rand();\n");
  EXPECT_EQ(CountRule(findings, Rule::kNondeterminism), 1);
}

TEST(RulesTest, R1SanctionsRngAndClockFiles) {
  EXPECT_TRUE(
      AnalyzeSource("src/common/rng.cc", "int x = rand();\n").empty());
  EXPECT_TRUE(AnalyzeSource("src/runtime/resilience/clock.cc",
                            "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
  // The sanction is per-family: a clock read inside rng.cc still fires.
  EXPECT_EQ(CountRule(AnalyzeSource("src/common/rng.cc",
                                    "auto t = system_clock::now();\n"),
                      Rule::kNondeterminism),
            1);
}

TEST(RulesTest, R2StrictInCoreIgnoresSuppression) {
  const std::string src =
      "// costsense-lint: allow(R2, \"should not be honored\")\n"
      "std::unordered_map<int, int> m;\n";
  EXPECT_EQ(CountRule(AnalyzeSource("src/core/discovery.cc", src),
                      Rule::kUnorderedContainer),
            1);
  EXPECT_EQ(CountRule(AnalyzeSource("src/exp/report.cc", src),
                      Rule::kUnorderedContainer),
            1);
  // Outside core/exp the same suppression silences the finding.
  EXPECT_EQ(CountRule(AnalyzeSource("src/runtime/cache.cc", src),
                      Rule::kUnorderedContainer),
            0);
}

TEST(RulesTest, R3OnlyAppliesToLibraryCode) {
  const std::string src = "void f() { printf(\"x\"); }\n";
  EXPECT_EQ(CountRule(AnalyzeSource("src/opt/plan.cc", src),
                      Rule::kRawOutput),
            1);
  EXPECT_TRUE(AnalyzeSource("src/exp/report.cc", src).empty());
  EXPECT_TRUE(AnalyzeSource("bench/fig5_shared_device.cc", src).empty());
  EXPECT_TRUE(AnalyzeSource("tests/opt/optimizer_test.cc", src).empty());
}

TEST(RulesTest, R3StrictInServeIgnoresSuppression) {
  const std::string src =
      "// costsense-lint: allow(R3, \"should not be honored\")\n"
      "void f() { printf(\"x\"); }\n";
  EXPECT_EQ(CountRule(AnalyzeSource("src/serve/server.cc", src),
                      Rule::kRawOutput),
            1);
  EXPECT_EQ(CountRule(AnalyzeSource("src/serve/dispatcher.h", src),
                      Rule::kRawOutput),
            1);
  // Outside serve the same suppression silences the finding, and only R3
  // is strict there: a justified R1/R2 allow() still works in serve.
  EXPECT_EQ(CountRule(AnalyzeSource("src/opt/plan.cc", src),
                      Rule::kRawOutput),
            0);
  EXPECT_EQ(
      CountRule(AnalyzeSource(
                    "src/serve/session.cc",
                    "// costsense-lint: allow(R2, \"never iterated\")\n"
                    "std::unordered_map<int, int> m;\n"),
                Rule::kUnorderedContainer),
      0);
}

TEST(RulesTest, R5BansGetenvOutsideEngineConfig) {
  const std::string src = "const char* v = std::getenv(\"X\");\n";
  EXPECT_EQ(CountRule(AnalyzeSource("src/exp/report.cc", src), Rule::kGetenv),
            1);
  EXPECT_EQ(CountRule(AnalyzeSource("bench/bench_util.cc", src),
                      Rule::kGetenv),
            1);
  EXPECT_EQ(CountRule(AnalyzeSource("tests/core/kernels_test.cc", src),
                      Rule::kGetenv),
            1);
  EXPECT_EQ(CountRule(AnalyzeSource("src/runtime/thread_pool.cc",
                                    "char* v = secure_getenv(\"X\");\n"),
                      Rule::kGetenv),
            1);
  // The single sanctioned reader: both the header and the implementation.
  EXPECT_TRUE(AnalyzeSource("src/engine/config.cc", src).empty());
  EXPECT_TRUE(AnalyzeSource("src/engine/config.h", src).empty());
  // Writing the environment is not reading it around the config.
  EXPECT_TRUE(AnalyzeSource("tests/engine/config_test.cc",
                            "setenv(\"COSTSENSE_THREADS\", \"2\", 1);\n")
                  .empty());
  // Suppressions are honored with a justification, same grammar as R2.
  EXPECT_TRUE(AnalyzeSource(
                  "src/exp/report.cc",
                  "// costsense-lint: allow(R5, \"legacy shim, tracked\")\n" +
                      src)
                  .empty());
}

TEST(RulesTest, R6BansIntrinsicsOutsideLinalgSimd) {
  const std::string src =
      "#include <immintrin.h>\n"
      "__m256d Load(const double* p) { return _mm256_loadu_pd(p); }\n";
  // Include line fires once; the vector type and the call fire on line 2.
  const auto findings = AnalyzeSource("src/core/worst_case.cc", src);
  EXPECT_EQ(CountRule(findings, Rule::kRawIntrinsics), 3);
  EXPECT_EQ(CountRule(AnalyzeSource("bench/micro_kernels.cc", src),
                      Rule::kRawIntrinsics),
            3);
  EXPECT_EQ(CountRule(AnalyzeSource("tests/core/kernels_test.cc", src),
                      Rule::kRawIntrinsics),
            3);
  // The sanctioned tree: both the dispatch header and the implementation.
  EXPECT_TRUE(AnalyzeSource("src/linalg/simd_kernels.cc", src).empty());
  EXPECT_TRUE(AnalyzeSource("src/linalg/simd_kernels.h", src).empty());
  // SSE-era prefixes and types are the same rule.
  EXPECT_EQ(CountRule(AnalyzeSource("src/opt/plan.cc",
                                    "__m128i v = _mm_setzero_si128();\n"),
                      Rule::kRawIntrinsics),
            2);
  // Suppressions are honored with a justification, same grammar as R2.
  EXPECT_TRUE(
      AnalyzeSource("src/storage/layout.cc",
                    "// costsense-lint: allow(R6, \"measured, documented\")\n"
                    "__m256i v = _mm256_setzero_si256();\n")
          .empty());
  // Names that merely mention simd stay clean: the dispatched API itself
  // must not trip the rule at call sites.
  EXPECT_TRUE(AnalyzeSource("src/core/risk.cc",
                            "double m = linalg::MinValueSimd(x, n);\n")
                  .empty());
}

TEST(RulesTest, FprintfToStderrIsNotRawOutput) {
  EXPECT_TRUE(AnalyzeSource("src/opt/plan.cc",
                            "void f() { std::fprintf(stderr, \"d\"); }\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

TEST(SuppressionTest, TrailingCoversItsOwnLineOnly) {
  const auto findings = AnalyzeSource(
      "src/opt/plan.cc",
      "void f() {\n"
      "  printf(\"a\");  // costsense-lint: allow(R3, \"render shim\")\n"
      "  printf(\"b\");\n"
      "}\n");
  ASSERT_EQ(CountRule(findings, Rule::kRawOutput), 1);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(SuppressionTest, StandaloneCoversNextLine) {
  const auto findings = AnalyzeSource(
      "src/opt/plan.cc",
      "// costsense-lint: allow(R3, \"render shim\")\n"
      "void f() { printf(\"a\"); }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(SuppressionTest, WrongRuleDoesNotSuppress) {
  const auto findings = AnalyzeSource(
      "src/opt/plan.cc",
      "void f() { printf(\"a\"); }  // costsense-lint: allow(R1, \"wrong rule\")\n");
  EXPECT_EQ(CountRule(findings, Rule::kRawOutput), 1);
}

TEST(SuppressionTest, BareAllowIsAFindingAndDoesNotSuppress) {
  const auto findings = AnalyzeSource(
      "src/opt/plan.cc",
      "void f() { printf(\"a\"); }  // costsense-lint: allow(R3)\n");
  EXPECT_EQ(CountRule(findings, Rule::kBadSuppression), 1);
  EXPECT_EQ(CountRule(findings, Rule::kRawOutput), 1);
}

TEST(SuppressionTest, EmptyOrQuotedEmptyJustificationRejected) {
  EXPECT_EQ(CountRule(AnalyzeSource("src/a/b.cc",
                                    "// costsense-lint: allow(R2, )\n"),
                      Rule::kBadSuppression),
            1);
  EXPECT_EQ(CountRule(AnalyzeSource("src/a/b.cc",
                                    "// costsense-lint: allow(R2, \"\")\n"),
                      Rule::kBadSuppression),
            1);
}

TEST(SuppressionTest, SemanticRuleNamesAccepted) {
  const auto findings = AnalyzeSource(
      "src/opt/plan.cc",
      "// costsense-lint: allow(raw-output, \"render shim\")\n"
      "void f() { printf(\"a\"); }\n");
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// R4
// ---------------------------------------------------------------------------

TEST(NodiscardTest, FlagsMissingAnnotationInHeaders) {
  const auto findings = AnalyzeSource(
      "src/opt/optimizer.h",
      "Status Save(int id);\n"
      "Result<int> Load(int id);\n"
      "[[nodiscard]] Status SaveChecked(int id);\n"
      "[[nodiscard]] Result<int> LoadChecked(int id);\n");
  EXPECT_EQ(CountRule(findings, Rule::kNodiscard), 2);
}

TEST(NodiscardTest, CoversSpecifiersQualifiersAndTemplates) {
  EXPECT_EQ(CountRule(AnalyzeSource("src/a/b.h",
                                    "class C {\n"
                                    " public:\n"
                                    "  virtual Result<double> Get() = 0;\n"
                                    "  static Status Flush();\n"
                                    "};\n"),
                      Rule::kNodiscard),
            2);
  EXPECT_EQ(CountRule(AnalyzeSource("src/a/b.h",
                                    "costsense::Status Save(int id);\n"),
                      Rule::kNodiscard),
            1);
  EXPECT_EQ(CountRule(AnalyzeSource("src/a/b.h",
                                    "template <typename T>\n"
                                    "Result<T> LoadAs(int id);\n"),
                      Rule::kNodiscard),
            1);
  EXPECT_TRUE(AnalyzeSource("src/a/b.h",
                            "template <typename T>\n"
                            "[[nodiscard]] Result<T> LoadAs(int id);\n")
                  .empty());
}

TEST(NodiscardTest, IgnoresUsesConstructorsAndNonHeaderFiles) {
  // Calls, returns, parameters and template-argument positions are uses,
  // not declarations.
  EXPECT_TRUE(AnalyzeSource("src/a/b.h",
                            "inline int f() {\n"
                            "  return Status::Ok().ok() ? 1 : 0;\n"
                            "}\n"
                            "void Consume(Status status);\n"
                            "std::vector<Result<int>> LoadMany();\n"
                            "using Fn = std::function<Status(int)>;\n")
                  .empty());
  // Constructors of Status/Result themselves are not return types.
  EXPECT_TRUE(AnalyzeSource("src/a/b.h",
                            "class Status2 {\n"
                            "  Status() : code_(0) {}\n"
                            "  Result(int value);\n"
                            "};\n")
                  .empty());
  // .cc files are out of scope for R4 (the header declaration carries the
  // attribute for the whole program).
  EXPECT_TRUE(
      AnalyzeSource("src/a/b.cc", "Status Save(int id) { return Status(); }\n")
          .empty());
}

// ---------------------------------------------------------------------------
// Fixture corpus golden test
// ---------------------------------------------------------------------------

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(CorpusTest, GoldenFindings) {
  const fs::path corpus(COSTSENSE_LINT_CORPUS_DIR);
  ASSERT_TRUE(fs::exists(corpus)) << corpus;

  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(corpus)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 7u) << "corpus lost fixture files";

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    std::string rel = fs::relative(file, corpus).generic_string();
    const auto file_findings = AnalyzeSource(rel, ReadFile(file));
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }

  const std::string expected = ReadFile(corpus / "expected_findings.txt");
  EXPECT_EQ(FormatFindings(std::move(findings)), expected)
      << "fixture corpus findings drifted; if the rule set changed on "
         "purpose, regenerate with: costsense_lint --relative-to "
         "tests/tools/lint/corpus --root tests/tools/lint/corpus";
}

/// Every rule must appear at least once in the golden file, so a rule
/// silently going dead cannot pass the corpus test.
TEST(CorpusTest, GoldenCoversEveryRule) {
  const std::string expected =
      ReadFile(fs::path(COSTSENSE_LINT_CORPUS_DIR) / "expected_findings.txt");
  for (const char* id :
       {"[R1]", "[R2]", "[R3]", "[R4]", "[R5]", "[R6]", "[SUP]"}) {
    EXPECT_NE(expected.find(id), std::string::npos)
        << id << " missing from expected_findings.txt";
  }
}

}  // namespace
}  // namespace costsense::lint
