// Tests for the costsense-lint analyzer — lexer hygiene (strings/comments
// never produce findings), suppression grammar and coverage, R4 declaration
// detection edge cases, layers.toml parsing, the R7 include-graph and R8
// lock-discipline whole-program passes, the JSON diagnostic format, and a
// fixture-corpus golden run (known-violation files under
// tests/tools/lint/corpus, compared byte-exact).
// (The directive prefix itself cannot appear in this comment: the tree
// lint parses it in every scanned file, including this one.)
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint.h"

namespace costsense::lint {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> TokenTexts(const std::string& src) {
  std::vector<std::string> out;
  for (const Token& t : Lex(src).tokens) out.push_back(t.text);
  return out;
}

int CountRule(const std::vector<Finding>& findings, Rule rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [rule](const Finding& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, StripsCommentsAndStrings) {
  const auto toks = TokenTexts(
      "int a; // rand() in a comment\n"
      "const char* s = \"srand(1) \\\" rand()\";\n"
      "/* system_clock */ char c = 'r';\n");
  EXPECT_EQ(std::count(toks.begin(), toks.end(), "rand"), 0);
  EXPECT_EQ(std::count(toks.begin(), toks.end(), "srand"), 0);
  EXPECT_EQ(std::count(toks.begin(), toks.end(), "system_clock"), 0);
  EXPECT_EQ(std::count(toks.begin(), toks.end(), "a"), 1);
}

TEST(LexerTest, RawStringsAndDigitSeparators) {
  const auto toks = TokenTexts(
      "auto s = R\"(rand() and printf())\";\n"
      "int big = 1'000'000;\n");
  EXPECT_EQ(std::count(toks.begin(), toks.end(), "rand"), 0);
  EXPECT_EQ(std::count(toks.begin(), toks.end(), "printf"), 0);
  EXPECT_EQ(std::count(toks.begin(), toks.end(), "1'000'000"), 1);
}

TEST(LexerTest, TracksLinesAndScopeResolution) {
  const LexedFile lexed = Lex("int a;\n\ncostsense::Status b;\n");
  ASSERT_GE(lexed.tokens.size(), 6u);
  EXPECT_EQ(lexed.tokens[0].line, 1);
  const Token& qual = lexed.tokens[4];
  EXPECT_EQ(qual.text, "::");
  EXPECT_EQ(qual.line, 3);
}

TEST(LexerTest, ClassifiesTrailingVersusStandaloneComments) {
  const LexedFile lexed = Lex(
      "// standalone\n"
      "int a;  // trailing\n");
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_FALSE(lexed.comments[0].trailing);
  EXPECT_TRUE(lexed.comments[1].trailing);
}

// ---------------------------------------------------------------------------
// R1 / R2 / R3 scoping
// ---------------------------------------------------------------------------

TEST(RulesTest, R1BansRandomnessOutsideRng) {
  const auto findings =
      AnalyzeSource("src/linalg/matrix.cc", "int x = rand();\n");
  EXPECT_EQ(CountRule(findings, Rule::kNondeterminism), 1);
}

TEST(RulesTest, R1SanctionsRngAndClockFiles) {
  EXPECT_TRUE(
      AnalyzeSource("src/common/rng.cc", "int x = rand();\n").empty());
  EXPECT_TRUE(AnalyzeSource("src/runtime/resilience/clock.cc",
                            "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
  // The sanction is per-family: a clock read inside rng.cc still fires.
  EXPECT_EQ(CountRule(AnalyzeSource("src/common/rng.cc",
                                    "auto t = system_clock::now();\n"),
                      Rule::kNondeterminism),
            1);
}

TEST(RulesTest, R2StrictInCoreIgnoresSuppression) {
  const std::string src =
      "// costsense-lint: allow(R2, \"should not be honored\")\n"
      "std::unordered_map<int, int> m;\n";
  EXPECT_EQ(CountRule(AnalyzeSource("src/core/discovery.cc", src),
                      Rule::kUnorderedContainer),
            1);
  EXPECT_EQ(CountRule(AnalyzeSource("src/exp/report.cc", src),
                      Rule::kUnorderedContainer),
            1);
  // Outside core/exp the same suppression silences the finding.
  EXPECT_EQ(CountRule(AnalyzeSource("src/runtime/cache.cc", src),
                      Rule::kUnorderedContainer),
            0);
}

TEST(RulesTest, R3OnlyAppliesToLibraryCode) {
  const std::string src = "void f() { printf(\"x\"); }\n";
  EXPECT_EQ(CountRule(AnalyzeSource("src/opt/plan.cc", src),
                      Rule::kRawOutput),
            1);
  EXPECT_TRUE(AnalyzeSource("src/exp/report.cc", src).empty());
  EXPECT_TRUE(AnalyzeSource("bench/fig5_shared_device.cc", src).empty());
  EXPECT_TRUE(AnalyzeSource("tests/opt/optimizer_test.cc", src).empty());
}

TEST(RulesTest, R3StrictInServeIgnoresSuppression) {
  const std::string src =
      "// costsense-lint: allow(R3, \"should not be honored\")\n"
      "void f() { printf(\"x\"); }\n";
  EXPECT_EQ(CountRule(AnalyzeSource("src/serve/server.cc", src),
                      Rule::kRawOutput),
            1);
  EXPECT_EQ(CountRule(AnalyzeSource("src/serve/dispatcher.h", src),
                      Rule::kRawOutput),
            1);
  // Outside serve the same suppression silences the finding, and only R3
  // is strict there: a justified R1/R2 allow() still works in serve.
  EXPECT_EQ(CountRule(AnalyzeSource("src/opt/plan.cc", src),
                      Rule::kRawOutput),
            0);
  EXPECT_EQ(
      CountRule(AnalyzeSource(
                    "src/serve/session.cc",
                    "// costsense-lint: allow(R2, \"never iterated\")\n"
                    "std::unordered_map<int, int> m;\n"),
                Rule::kUnorderedContainer),
      0);
}

TEST(RulesTest, R5BansGetenvOutsideEngineConfig) {
  const std::string src = "const char* v = std::getenv(\"X\");\n";
  EXPECT_EQ(CountRule(AnalyzeSource("src/exp/report.cc", src), Rule::kGetenv),
            1);
  EXPECT_EQ(CountRule(AnalyzeSource("bench/bench_util.cc", src),
                      Rule::kGetenv),
            1);
  EXPECT_EQ(CountRule(AnalyzeSource("tests/core/kernels_test.cc", src),
                      Rule::kGetenv),
            1);
  EXPECT_EQ(CountRule(AnalyzeSource("src/runtime/thread_pool.cc",
                                    "char* v = secure_getenv(\"X\");\n"),
                      Rule::kGetenv),
            1);
  // The single sanctioned reader: both the header and the implementation.
  EXPECT_TRUE(AnalyzeSource("src/engine/config.cc", src).empty());
  EXPECT_TRUE(AnalyzeSource("src/engine/config.h", src).empty());
  // Writing the environment is not reading it around the config.
  EXPECT_TRUE(AnalyzeSource("tests/engine/config_test.cc",
                            "setenv(\"COSTSENSE_THREADS\", \"2\", 1);\n")
                  .empty());
  // Suppressions are honored with a justification, same grammar as R2.
  EXPECT_TRUE(AnalyzeSource(
                  "src/exp/report.cc",
                  "// costsense-lint: allow(R5, \"legacy shim, tracked\")\n" +
                      src)
                  .empty());
}

TEST(RulesTest, R6BansIntrinsicsOutsideLinalgSimd) {
  const std::string src =
      "#include <immintrin.h>\n"
      "__m256d Load(const double* p) { return _mm256_loadu_pd(p); }\n";
  // Include line fires once; the vector type and the call fire on line 2.
  const auto findings = AnalyzeSource("src/core/worst_case.cc", src);
  EXPECT_EQ(CountRule(findings, Rule::kRawIntrinsics), 3);
  EXPECT_EQ(CountRule(AnalyzeSource("bench/micro_kernels.cc", src),
                      Rule::kRawIntrinsics),
            3);
  EXPECT_EQ(CountRule(AnalyzeSource("tests/core/kernels_test.cc", src),
                      Rule::kRawIntrinsics),
            3);
  // The sanctioned tree: both the dispatch header and the implementation.
  EXPECT_TRUE(AnalyzeSource("src/linalg/simd_kernels.cc", src).empty());
  EXPECT_TRUE(AnalyzeSource("src/linalg/simd_kernels.h", src).empty());
  // SSE-era prefixes and types are the same rule.
  EXPECT_EQ(CountRule(AnalyzeSource("src/opt/plan.cc",
                                    "__m128i v = _mm_setzero_si128();\n"),
                      Rule::kRawIntrinsics),
            2);
  // Suppressions are honored with a justification, same grammar as R2.
  EXPECT_TRUE(
      AnalyzeSource("src/storage/layout.cc",
                    "// costsense-lint: allow(R6, \"measured, documented\")\n"
                    "__m256i v = _mm256_setzero_si256();\n")
          .empty());
  // Names that merely mention simd stay clean: the dispatched API itself
  // must not trip the rule at call sites.
  EXPECT_TRUE(AnalyzeSource("src/core/risk.cc",
                            "double m = linalg::MinValueSimd(x, n);\n")
                  .empty());
}

TEST(RulesTest, FprintfToStderrIsNotRawOutput) {
  EXPECT_TRUE(AnalyzeSource("src/opt/plan.cc",
                            "void f() { std::fprintf(stderr, \"d\"); }\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

TEST(SuppressionTest, TrailingCoversItsOwnLineOnly) {
  const auto findings = AnalyzeSource(
      "src/opt/plan.cc",
      "void f() {\n"
      "  printf(\"a\");  // costsense-lint: allow(R3, \"render shim\")\n"
      "  printf(\"b\");\n"
      "}\n");
  ASSERT_EQ(CountRule(findings, Rule::kRawOutput), 1);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(SuppressionTest, StandaloneCoversNextLine) {
  const auto findings = AnalyzeSource(
      "src/opt/plan.cc",
      "// costsense-lint: allow(R3, \"render shim\")\n"
      "void f() { printf(\"a\"); }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(SuppressionTest, WrongRuleDoesNotSuppress) {
  const auto findings = AnalyzeSource(
      "src/opt/plan.cc",
      "void f() { printf(\"a\"); }  // costsense-lint: allow(R1, \"wrong rule\")\n");
  EXPECT_EQ(CountRule(findings, Rule::kRawOutput), 1);
}

TEST(SuppressionTest, BareAllowIsAFindingAndDoesNotSuppress) {
  const auto findings = AnalyzeSource(
      "src/opt/plan.cc",
      "void f() { printf(\"a\"); }  // costsense-lint: allow(R3)\n");
  EXPECT_EQ(CountRule(findings, Rule::kBadSuppression), 1);
  EXPECT_EQ(CountRule(findings, Rule::kRawOutput), 1);
}

TEST(SuppressionTest, EmptyOrQuotedEmptyJustificationRejected) {
  EXPECT_EQ(CountRule(AnalyzeSource("src/a/b.cc",
                                    "// costsense-lint: allow(R2, )\n"),
                      Rule::kBadSuppression),
            1);
  EXPECT_EQ(CountRule(AnalyzeSource("src/a/b.cc",
                                    "// costsense-lint: allow(R2, \"\")\n"),
                      Rule::kBadSuppression),
            1);
}

TEST(SuppressionTest, SemanticRuleNamesAccepted) {
  const auto findings = AnalyzeSource(
      "src/opt/plan.cc",
      "// costsense-lint: allow(raw-output, \"render shim\")\n"
      "void f() { printf(\"a\"); }\n");
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// R4
// ---------------------------------------------------------------------------

TEST(NodiscardTest, FlagsMissingAnnotationInHeaders) {
  const auto findings = AnalyzeSource(
      "src/opt/optimizer.h",
      "Status Save(int id);\n"
      "Result<int> Load(int id);\n"
      "[[nodiscard]] Status SaveChecked(int id);\n"
      "[[nodiscard]] Result<int> LoadChecked(int id);\n");
  EXPECT_EQ(CountRule(findings, Rule::kNodiscard), 2);
}

TEST(NodiscardTest, CoversSpecifiersQualifiersAndTemplates) {
  EXPECT_EQ(CountRule(AnalyzeSource("src/a/b.h",
                                    "class C {\n"
                                    " public:\n"
                                    "  virtual Result<double> Get() = 0;\n"
                                    "  static Status Flush();\n"
                                    "};\n"),
                      Rule::kNodiscard),
            2);
  EXPECT_EQ(CountRule(AnalyzeSource("src/a/b.h",
                                    "costsense::Status Save(int id);\n"),
                      Rule::kNodiscard),
            1);
  EXPECT_EQ(CountRule(AnalyzeSource("src/a/b.h",
                                    "template <typename T>\n"
                                    "Result<T> LoadAs(int id);\n"),
                      Rule::kNodiscard),
            1);
  EXPECT_TRUE(AnalyzeSource("src/a/b.h",
                            "template <typename T>\n"
                            "[[nodiscard]] Result<T> LoadAs(int id);\n")
                  .empty());
}

TEST(NodiscardTest, IgnoresUsesConstructorsAndNonHeaderFiles) {
  // Calls, returns, parameters and template-argument positions are uses,
  // not declarations.
  EXPECT_TRUE(AnalyzeSource("src/a/b.h",
                            "inline int f() {\n"
                            "  return Status::Ok().ok() ? 1 : 0;\n"
                            "}\n"
                            "void Consume(Status status);\n"
                            "std::vector<Result<int>> LoadMany();\n"
                            "using Fn = std::function<Status(int)>;\n")
                  .empty());
  // Constructors of Status/Result themselves are not return types.
  EXPECT_TRUE(AnalyzeSource("src/a/b.h",
                            "class Status2 {\n"
                            "  Status() : code_(0) {}\n"
                            "  Result(int value);\n"
                            "};\n")
                  .empty());
  // .cc files are out of scope for R4 (the header declaration carries the
  // attribute for the whole program).
  EXPECT_TRUE(
      AnalyzeSource("src/a/b.cc", "Status Save(int id) { return Status(); }\n")
          .empty());
}

// ---------------------------------------------------------------------------
// Layer manifest parsing
// ---------------------------------------------------------------------------

constexpr const char* kTestManifest =
    "[layers]\n"
    "common = []\n"
    "core = [\"common\"]\n"
    "engine = [\"common\", \"core\"]\n"
    "\n"
    "[[exception]]\n"
    "from = \"core\"\n"
    "to = \"engine/legacy.h\"\n"
    "why = \"documented inversion kept for the test\"\n";

LayerManifest TestManifest() {
  LayerManifest manifest;
  std::string error;
  EXPECT_TRUE(ParseLayerManifest(kTestManifest, &manifest, &error)) << error;
  return manifest;
}

TEST(ManifestTest, ParsesOrderAllowedEdgesAndExceptions) {
  const LayerManifest m = TestManifest();
  ASSERT_EQ(m.order.size(), 3u);
  EXPECT_EQ(m.order[0], "common");
  EXPECT_EQ(m.order[2], "engine");
  EXPECT_TRUE(m.allowed.at("common").empty());
  EXPECT_EQ(m.allowed.at("engine").count("core"), 1u);
  ASSERT_EQ(m.exceptions.size(), 1u);
  EXPECT_EQ(m.exceptions[0].from, "core");
  EXPECT_EQ(m.exceptions[0].to, "engine/legacy.h");
  EXPECT_FALSE(m.exceptions[0].why.empty());
}

TEST(ManifestTest, RejectsUndeclaredModuleInAllowList) {
  LayerManifest m;
  std::string error;
  EXPECT_FALSE(ParseLayerManifest(
      "[layers]\ncommon = []\ncore = [\"mystery\"]\n", &m, &error));
  EXPECT_NE(error.find("mystery"), std::string::npos) << error;
}

TEST(ManifestTest, RejectsCycleInAllowedGraph) {
  LayerManifest m;
  std::string error;
  EXPECT_FALSE(ParseLayerManifest(
      "[layers]\nalpha = [\"beta\"]\nbeta = [\"alpha\"]\n", &m, &error));
}

TEST(ManifestTest, RejectsIncompleteException) {
  LayerManifest m;
  std::string error;
  EXPECT_FALSE(ParseLayerManifest(
      std::string("[layers]\ncommon = []\ncore = [\"common\"]\n") +
          "[[exception]]\nfrom = \"core\"\nto = \"common/x.h\"\n",
      &m, &error));
  // Diagnostics carry a line anchor so a broken manifest is fixable.
  EXPECT_EQ(error.rfind("layers.toml:", 0), 0u) << error;
}

// ---------------------------------------------------------------------------
// R7: include-graph layering
// ---------------------------------------------------------------------------

TEST(LayeringTest, FlagsBackEdgeAndAcceptsSanctionedEdges) {
  const LayerManifest m = TestManifest();
  const std::vector<SourceFile> files = {
      {"src/core/plan.cc", "#include \"engine/config.h\"\nint x;\n"},
      {"src/engine/config.cc", "#include \"core/plan.h\"\nint y;\n"},
  };
  const auto findings = CheckIncludeGraph(files, m);
  ASSERT_EQ(CountRule(findings, Rule::kLayering), 1);
  EXPECT_EQ(findings[0].file, "src/core/plan.cc");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LayeringTest, ManifestExceptionCoversOneTargetOnly) {
  const LayerManifest m = TestManifest();
  EXPECT_TRUE(CheckIncludeGraph({{"src/core/plan.cc",
                                  "#include \"engine/legacy.h\"\n"}},
                                m)
                  .empty());
  EXPECT_EQ(CountRule(CheckIncludeGraph({{"src/core/plan.cc",
                                          "#include \"engine/other.h\"\n"}},
                                        m),
                      Rule::kLayering),
            1);
}

TEST(LayeringTest, SuppressionOnTheIncludeLineIsHonored) {
  const LayerManifest m = TestManifest();
  EXPECT_TRUE(
      CheckIncludeGraph(
          {{"src/core/plan.cc",
            "#include \"engine/other.h\"  // costsense-lint: allow(R7, "
            "\"transitional, tracked in the migration issue\")\n"}},
          m)
          .empty());
}

TEST(LayeringTest, LibraryCodeMustNotIncludeTestsOrBench) {
  const LayerManifest m = TestManifest();
  const auto findings = CheckIncludeGraph(
      {{"src/core/plan.cc", "#include \"tests/util.h\"\n"}}, m);
  ASSERT_EQ(CountRule(findings, Rule::kLayering), 1);
  EXPECT_NE(findings[0].message.find("bench/, tests/ or tools/"),
            std::string::npos);
}

TEST(LayeringTest, UndeclaredTargetModuleIsAFinding) {
  const auto findings = CheckIncludeGraph(
      {{"src/core/plan.cc", "#include \"mystery/box.h\"\n"}}, TestManifest());
  ASSERT_EQ(CountRule(findings, Rule::kLayering), 1);
  EXPECT_NE(findings[0].message.find("does not declare"), std::string::npos);
}

TEST(LayeringTest, FileCyclesAreNeverSuppressible) {
  const LayerManifest m = TestManifest();
  const std::vector<SourceFile> files = {
      {"src/core/a.h",
       "#include \"core/b.h\"  // costsense-lint: allow(R7, \"no\")\n"},
      {"src/core/b.h",
       "#include \"core/a.h\"  // costsense-lint: allow(R7, \"no\")\n"},
  };
  const auto findings = CheckIncludeGraph(files, m);
  ASSERT_EQ(CountRule(findings, Rule::kLayering), 1);
  EXPECT_NE(findings[0].message.find("include cycle"), std::string::npos);
}

constexpr const char* kNestedManifest =
    "[layers]\n"
    "common = []\n"
    "runtime/sink = [\"common\"]\n"
    "runtime = [\"common\", \"runtime/sink\"]\n";

LayerManifest NestedManifest() {
  LayerManifest manifest;
  std::string error;
  EXPECT_TRUE(ParseLayerManifest(kNestedManifest, &manifest, &error)) << error;
  return manifest;
}

TEST(ManifestTest, NestedModuleKeysParseAndResolveExceptions) {
  const LayerManifest m = NestedManifest();
  EXPECT_EQ(m.allowed.at("runtime").count("runtime/sink"), 1u);
  EXPECT_TRUE(m.allowed.at("runtime/sink").count("common"));
  // A file-level exception spec under a nested module resolves to the
  // longest declared prefix, so the manifest validates.
  LayerManifest with_exception;
  std::string error;
  EXPECT_TRUE(ParseLayerManifest(
      std::string(kNestedManifest) +
          "[[exception]]\n"
          "from = \"runtime/sink/stages.cc\"\n"
          "to = \"runtime/cache_store.h\"\n"
          "why = \"test fixture\"\n",
      &with_exception, &error))
      << error;
}

TEST(LayeringTest, DeclaredSubdirectoryIsItsOwnLayer) {
  const LayerManifest m = NestedManifest();
  // Child -> parent is a back-edge: "runtime/sink" may only include
  // common, and runtime/cache_store.h belongs to the parent module.
  const auto findings = CheckIncludeGraph(
      {{"src/runtime/sink/stages.cc",
        "#include \"runtime/cache_store.h\"\n"}},
      m);
  ASSERT_EQ(CountRule(findings, Rule::kLayering), 1);
  EXPECT_NE(findings[0].message.find("'runtime/sink'"), std::string::npos)
      << findings[0].message;
  // The declared parent -> child edge and intra-child includes are clean.
  EXPECT_TRUE(CheckIncludeGraph(
                  {{"src/runtime/cache_store.cc",
                    "#include \"runtime/sink/stages.h\"\n"},
                   {"src/runtime/sink/compress.cc",
                    "#include \"runtime/sink/sink.h\"\n"}},
                  m)
                  .empty());
}

TEST(LayeringTest, UndeclaredSubdirectoryFoldsIntoItsParent) {
  // Without the nested entry the same file is just part of runtime, so
  // the include that was a back-edge above is intra-module here.
  LayerManifest m;
  std::string error;
  ASSERT_TRUE(ParseLayerManifest("[layers]\ncommon = []\nruntime = [\"common\"]\n",
                                 &m, &error))
      << error;
  EXPECT_TRUE(CheckIncludeGraph(
                  {{"src/runtime/sink/stages.cc",
                    "#include \"runtime/cache_store.h\"\n"}},
                  m)
                  .empty());
}

// ---------------------------------------------------------------------------
// R8: lock discipline
// ---------------------------------------------------------------------------

TEST(LockDisciplineTest, FlagsAbbaOrderCycle) {
  const std::vector<SourceFile> files = {
      {"src/serve/abba.cc",
       "#include <mutex>\n"
       "class Abba {\n"
       " public:\n"
       "  void F() { std::lock_guard<std::mutex> a(a_mu_);\n"
       "             std::lock_guard<std::mutex> b(b_mu_); }\n"
       "  void G() { std::lock_guard<std::mutex> b(b_mu_);\n"
       "             std::lock_guard<std::mutex> a(a_mu_); }\n"
       " private:\n"
       "  std::mutex a_mu_;\n"
       "  std::mutex b_mu_;\n"
       "};\n"}};
  const auto findings = CheckLockDiscipline(files);
  ASSERT_EQ(CountRule(findings, Rule::kLockDiscipline), 1);
  EXPECT_NE(findings[0].message.find("inconsistent lock acquisition order"),
            std::string::npos);
}

TEST(LockDisciplineTest, FlagsLockHeldAcrossOracleCall) {
  const std::vector<SourceFile> files = {
      {"src/serve/held.cc",
       "#include <mutex>\n"
       "class Held {\n"
       " public:\n"
       "  double F(int q) {\n"
       "    std::lock_guard<std::mutex> lock(mu_);\n"
       "    return oracle_.Optimize(q);\n"
       "  }\n"
       " private:\n"
       "  std::mutex mu_;\n"
       "  Oracle oracle_;\n"
       "};\n"}};
  const auto findings = CheckLockDiscipline(files);
  ASSERT_EQ(CountRule(findings, Rule::kLockDiscipline), 1);
  EXPECT_NE(findings[0].message.find("oracle boundary"), std::string::npos);
}

TEST(LockDisciplineTest, ReachesTransportBoundaryThroughTheCallGraph) {
  // F holds the lock and calls a helper; only the helper touches the
  // transport. The whole-program pass must follow the call edge.
  const std::vector<SourceFile> files = {
      {"src/serve/deep.cc",
       "#include <mutex>\n"
       "class Deep {\n"
       " public:\n"
       "  void F() {\n"
       "    std::lock_guard<std::mutex> lock(mu_);\n"
       "    Helper();\n"
       "  }\n"
       " private:\n"
       "  void Helper() { (void)transport_->SendFrame(0, \"x\"); }\n"
       "  std::mutex mu_;\n"
       "  FrameTransport* transport_;\n"
       "};\n"}};
  const auto findings = CheckLockDiscipline(files);
  ASSERT_EQ(CountRule(findings, Rule::kLockDiscipline), 1);
  EXPECT_EQ(findings[0].line, 6);
}

TEST(LockDisciplineTest, ScopedLockGroupAndScopedReleaseAreClean) {
  const std::vector<SourceFile> files = {
      {"src/serve/clean.cc",
       "#include <mutex>\n"
       "class Clean {\n"
       " public:\n"
       "  void Atomic() { std::scoped_lock lock(a_mu_, b_mu_); n_ = 1; }\n"
       "  double Staged(int q) {\n"
       "    { std::lock_guard<std::mutex> lock(a_mu_); n_ = 2; }\n"
       "    return oracle_.Optimize(q);\n"  // lock released before the call
       "  }\n"
       " private:\n"
       "  std::mutex a_mu_;\n"
       "  std::mutex b_mu_;\n"
       "  Oracle oracle_;\n"
       "  int n_ = 0;\n"
       "};\n"}};
  EXPECT_TRUE(CheckLockDiscipline(files).empty());
}

TEST(LockDisciplineTest, JustifiedSuppressionVouchesTheEdge) {
  const std::vector<SourceFile> files = {
      {"src/serve/vouched.cc",
       "#include <mutex>\n"
       "class Vouched {\n"
       " public:\n"
       "  void F() {\n"
       "    std::lock_guard<std::mutex> a(a_mu_);\n"
       "    // costsense-lint: allow(R8, \"startup-only path, cannot race "
       "G\")\n"
       "    std::lock_guard<std::mutex> b(b_mu_);\n"
       "  }\n"
       "  void G() { std::lock_guard<std::mutex> b(b_mu_);\n"
       "             std::lock_guard<std::mutex> a(a_mu_); }\n"
       " private:\n"
       "  std::mutex a_mu_;\n"
       "  std::mutex b_mu_;\n"
       "};\n"}};
  EXPECT_TRUE(CheckLockDiscipline(files).empty());
}

// ---------------------------------------------------------------------------
// Diagnostic formats
// ---------------------------------------------------------------------------

TEST(FormatTest, JsonCarriesFileLineColRuleAndFingerprint) {
  const std::string json = FormatFindingsJson(
      AnalyzeSource("src/opt/plan.cc", "void f() { printf(\"x\"); }\n"));
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/opt/plan.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"R3\""), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\": \""), std::string::npos);
}

TEST(FormatTest, JsonWithNoFindingsIsStillWellFormed) {
  EXPECT_EQ(FormatFindingsJson({}),
            "{\"version\": 1, \"count\": 0, \"findings\": []}\n");
}

TEST(FormatTest, FingerprintsSurviveLineShifts) {
  std::vector<Finding> before =
      AnalyzeSource("src/opt/plan.cc", "void f() { printf(\"x\"); }\n");
  std::vector<Finding> after = AnalyzeSource(
      "src/opt/plan.cc", "\n\n\nvoid f() { printf(\"x\"); }\n");
  AssignFingerprints(&before);
  AssignFingerprints(&after);
  ASSERT_EQ(before.size(), 1u);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_NE(before[0].line, after[0].line);
  EXPECT_EQ(before[0].fingerprint, after[0].fingerprint);
}

TEST(FormatTest, DuplicateFindingsGetDistinctStableFingerprints) {
  std::vector<Finding> findings = AnalyzeSource(
      "src/opt/plan.cc",
      "void f() { printf(\"x\"); }\nvoid g() { printf(\"x\"); }\n");
  AssignFingerprints(&findings);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].fingerprint, findings[1].fingerprint);
}

// ---------------------------------------------------------------------------
// Fixture corpus golden test
// ---------------------------------------------------------------------------

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(CorpusTest, GoldenFindings) {
  const fs::path corpus(COSTSENSE_LINT_CORPUS_DIR);
  ASSERT_TRUE(fs::exists(corpus)) << corpus;

  LayerManifest manifest;
  std::string manifest_error;
  ASSERT_TRUE(ParseLayerManifest(ReadFile(corpus / "layers.toml"), &manifest,
                                 &manifest_error))
      << manifest_error;

  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(corpus)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cc") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  ASSERT_GE(paths.size(), 15u) << "corpus lost fixture files";

  std::vector<SourceFile> files;
  for (const fs::path& path : paths) {
    files.push_back(
        {fs::relative(path, corpus).generic_string(), ReadFile(path)});
  }

  const std::string expected = ReadFile(corpus / "expected_findings.txt");
  EXPECT_EQ(FormatFindings(AnalyzeRepo(files, &manifest)), expected)
      << "fixture corpus findings drifted; if the rule set changed on "
         "purpose, regenerate with: costsense_lint --root "
         "tests/tools/lint/corpus --relative-to tests/tools/lint/corpus "
         "--layers tests/tools/lint/corpus/layers.toml";
}

/// Every rule must appear at least once in the golden file, so a rule
/// silently going dead cannot pass the corpus test.
TEST(CorpusTest, GoldenCoversEveryRule) {
  const std::string expected =
      ReadFile(fs::path(COSTSENSE_LINT_CORPUS_DIR) / "expected_findings.txt");
  for (const char* id : {"[R1]", "[R2]", "[R3]", "[R4]", "[R5]", "[R6]",
                         "[R7]", "[R8]", "[SUP]"}) {
    EXPECT_NE(expected.find(id), std::string::npos)
        << id << " missing from expected_findings.txt";
  }
}

}  // namespace
}  // namespace costsense::lint
