// Validates the analytic catalog against actually-generated data: the
// paper used RUNSTATS output from a real 100 GB load; we generate
// dbgen-conformant data at a small scale factor and check that measured
// statistics match the closed-form ones in schema.cc, which justifies the
// substitution (DESIGN.md Section 2).
#include "tpch/dbgen.h"

#include <gtest/gtest.h>

#include <set>

#include "tpch/schema.h"
#include "tpch/stats.h"

namespace costsense::tpch {
namespace {

constexpr double kSf = 0.01;

class DbgenFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen_ = new DbgenLite(kSf);
    orders_ = new GeneratedTable();
    lineitem_ = new GeneratedTable();
    gen_->OrdersAndLineitem(orders_, lineitem_);
  }
  static DbgenLite* gen_;
  static GeneratedTable* orders_;
  static GeneratedTable* lineitem_;
};
DbgenLite* DbgenFixture::gen_ = nullptr;
GeneratedTable* DbgenFixture::orders_ = nullptr;
GeneratedTable* DbgenFixture::lineitem_ = nullptr;

TEST_F(DbgenFixture, ExactCardinalities) {
  const Cardinalities c = CardinalitiesFor(kSf);
  EXPECT_EQ(gen_->Region().num_rows(), 5u);
  EXPECT_EQ(gen_->Nation().num_rows(), 25u);
  EXPECT_EQ(gen_->Supplier().num_rows(), static_cast<size_t>(c.supplier));
  EXPECT_EQ(gen_->Part().num_rows(), static_cast<size_t>(c.part));
  EXPECT_EQ(gen_->PartSupp().num_rows(), static_cast<size_t>(c.partsupp));
  EXPECT_EQ(gen_->Customer().num_rows(), static_cast<size_t>(c.customer));
  EXPECT_EQ(orders_->num_rows(), static_cast<size_t>(c.orders));
  // Lineitem's expected cardinality is 4x orders (1..7 lines uniform);
  // allow 3% sampling slack.
  EXPECT_NEAR(static_cast<double>(lineitem_->num_rows()), c.lineitem,
              0.03 * c.lineitem);
}

TEST_F(DbgenFixture, PartSuppStructure) {
  const GeneratedTable ps = gen_->PartSupp();
  // Exactly 4 rows per part, all (part, supp) pairs distinct.
  std::set<std::pair<double, double>> pairs;
  for (size_t r = 0; r < ps.num_rows(); ++r) {
    pairs.insert({ps.column("ps_partkey")[r], ps.column("ps_suppkey")[r]});
  }
  EXPECT_EQ(pairs.size(), ps.num_rows());
  const catalog::ColumnStats pk = MeasureStats(ps.column("ps_partkey"));
  EXPECT_DOUBLE_EQ(pk.n_distinct, 200000 * kSf);
}

TEST_F(DbgenFixture, CustomersDivisibleByThreeHaveNoOrders) {
  for (double ck : orders_->column("o_custkey")) {
    EXPECT_NE(static_cast<uint64_t>(ck) % 3, 0u);
  }
  // And therefore o_custkey's distinct count is ~2/3 of customers, the
  // analytic catalog's claim.
  const catalog::ColumnStats s = MeasureStats(orders_->column("o_custkey"));
  const double expected = 150000 * kSf * kCustomersWithOrdersFraction;
  EXPECT_NEAR(s.n_distinct, expected, 0.05 * expected);
}

TEST_F(DbgenFixture, DateDomainsMatchAnalyticCatalog) {
  const catalog::ColumnStats odate =
      MeasureStats(orders_->column("o_orderdate"));
  EXPECT_GE(odate.min_value, 0.0);
  EXPECT_LE(odate.max_value, kOrderDateDays - 1);
  const catalog::ColumnStats ship =
      MeasureStats(lineitem_->column("l_shipdate"));
  EXPECT_GE(ship.min_value, 1.0);
  EXPECT_LE(ship.max_value, kShipDateDays - 1);
  // Receipt follows ship by 1..30 days.
  const auto& ships = lineitem_->column("l_shipdate");
  const auto& receipts = lineitem_->column("l_receiptdate");
  for (size_t i = 0; i < ships.size(); i += 997) {
    EXPECT_GT(receipts[i], ships[i]);
    EXPECT_LE(receipts[i], ships[i] + 30);
  }
}

TEST_F(DbgenFixture, ForeignKeysInRange) {
  const double n_parts = 200000 * kSf;
  const double n_suppliers = 10000 * kSf;
  const catalog::ColumnStats pk = MeasureStats(lineitem_->column("l_partkey"));
  EXPECT_GE(pk.min_value, 1.0);
  EXPECT_LE(pk.max_value, n_parts);
  const catalog::ColumnStats sk = MeasureStats(lineitem_->column("l_suppkey"));
  EXPECT_LE(sk.max_value, n_suppliers);
}

TEST_F(DbgenFixture, MeasuredDistinctsMatchAnalyticCatalogClaims) {
  // The headline validation: for each (table, column) with a small,
  // SF-independent domain, measured distinct counts equal the analytic
  // catalog's n_distinct.
  const catalog::Catalog cat = MakeTpchCatalog(kSf);
  struct Check {
    const GeneratedTable* data;
    const char* column;
  };
  const GeneratedTable part = gen_->Part();
  const GeneratedTable supplier = gen_->Supplier();
  const std::vector<Check> checks = {
      {&part, "p_mfgr"},        {&part, "p_brand"},
      {&part, "p_size"},        {&part, "p_container"},
      {&supplier, "s_nationkey"}, {orders_, "o_orderpriority"},
      {lineitem_, "l_quantity"}, {lineitem_, "l_discount"},
      {lineitem_, "l_tax"},      {lineitem_, "l_linenumber"},
  };
  for (const Check& check : checks) {
    const int table_id = cat.TableId(check.data->name).value();
    const auto& table = cat.table(table_id);
    const size_t col = table.ColumnIndex(check.column).value();
    const double claimed = table.column(col).stats.n_distinct;
    const double measured =
        MeasureStats(check.data->column(check.column)).n_distinct;
    EXPECT_EQ(measured, claimed)
        << check.data->name << "." << check.column;
  }
}

TEST_F(DbgenFixture, Deterministic) {
  const DbgenLite again(kSf);
  const GeneratedTable p1 = gen_->Part();
  const GeneratedTable p2 = again.Part();
  ASSERT_EQ(p1.num_rows(), p2.num_rows());
  EXPECT_EQ(p1.column("p_type"), p2.column("p_type"));
}

TEST(MeasureStatsTest, BasicProperties) {
  const catalog::ColumnStats s = MeasureStats({3.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(s.n_distinct, 3.0);
  EXPECT_DOUBLE_EQ(s.min_value, 1.0);
  EXPECT_DOUBLE_EQ(s.max_value, 3.0);
}

TEST(MeasureStatsTest, EmptyInputSafe) {
  const catalog::ColumnStats s = MeasureStats({});
  EXPECT_DOUBLE_EQ(s.n_distinct, 1.0);
}

}  // namespace
}  // namespace costsense::tpch
