#include <gtest/gtest.h>

#include "blackbox/narrow_optimizer.h"
#include "opt/optimizer.h"
#include "tpch/queries.h"
#include "tpch/schema.h"
#include "tpch/stats.h"

namespace costsense::tpch {
namespace {

TEST(TpchStatsTest, CardinalitiesScaleLinearly) {
  const Cardinalities c1 = CardinalitiesFor(1.0);
  const Cardinalities c100 = CardinalitiesFor(100.0);
  EXPECT_DOUBLE_EQ(c1.lineitem, 6e6);
  EXPECT_DOUBLE_EQ(c100.lineitem, 6e8);
  EXPECT_DOUBLE_EQ(c100.orders, 1.5e8);
  EXPECT_DOUBLE_EQ(c100.region, 5.0);
  EXPECT_DOUBLE_EQ(c100.nation, 25.0);
  EXPECT_DOUBLE_EQ(c100.partsupp / c100.part, 4.0);
}

TEST(TpchSchemaTest, CatalogHasAllTables) {
  const catalog::Catalog cat = MakeTpchCatalog(1.0);
  EXPECT_EQ(cat.num_tables(), 8u);
  for (const char* name : {"region", "nation", "supplier", "part",
                           "partsupp", "customer", "orders", "lineitem"}) {
    EXPECT_TRUE(cat.TableId(name).ok()) << name;
  }
}

TEST(TpchSchemaTest, Sf100IsRoughly100GB) {
  // The paper's database: statistics from a 100 GB run. Summing table
  // pages at SF 100 should land in the right ballpark (TPC-H "100 GB"
  // counts raw data; stored pages with overhead run somewhat larger).
  const catalog::Catalog cat = MakeTpchCatalog(100.0);
  double total_bytes = 0.0;
  for (size_t t = 0; t < cat.num_tables(); ++t) {
    total_bytes +=
        cat.table(static_cast<int>(t)).pages() * cat.config().page_size_bytes;
  }
  EXPECT_GT(total_bytes, 80e9);
  EXPECT_LT(total_bytes, 220e9);
}

TEST(TpchSchemaTest, LineitemDominates) {
  const catalog::Catalog cat = MakeTpchCatalog(100.0);
  const auto& lineitem = cat.table(cat.TableId("lineitem").value());
  EXPECT_DOUBLE_EQ(lineitem.row_count(), 6e8);
  EXPECT_GT(lineitem.pages(), 1e7);  // tens of millions of pages
}

TEST(TpchSchemaTest, IndexSetCoversJoinColumns) {
  const catalog::Catalog cat = MakeTpchCatalog(1.0);
  EXPECT_GE(cat.num_indexes(), 14u);
  const int lineitem = cat.TableId("lineitem").value();
  const auto& t = cat.table(lineitem);
  EXPECT_GE(cat.FindIndexByLeadingColumn(
                lineitem, t.ColumnIndex("l_orderkey").value()),
            0);
  EXPECT_GE(cat.FindIndexByLeadingColumn(
                lineitem, t.ColumnIndex("l_partkey").value()),
            0);
  EXPECT_GE(cat.FindIndexByLeadingColumn(
                lineitem, t.ColumnIndex("l_shipdate").value()),
            0);
}

TEST(TpchQueriesTest, AllQueriesBuild) {
  const catalog::Catalog cat = MakeTpchCatalog(1.0);
  const std::vector<query::Query> queries = MakeTpchQueries(cat);
  ASSERT_EQ(queries.size(), 22u);
  for (int i = 0; i < 22; ++i) {
    EXPECT_EQ(queries[i].name, "Q" + std::to_string(i + 1));
    EXPECT_GE(queries[i].num_tables(), 1u);
    EXPECT_LE(queries[i].num_tables(), 8u);
  }
  // The paper's named queries have their expected shapes.
  EXPECT_EQ(queries[7].num_tables(), 8u);   // Q8
  EXPECT_EQ(queries[0].num_tables(), 1u);   // Q1
  EXPECT_EQ(queries[5].num_tables(), 1u);   // Q6
}

class TpchOptimizeTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchOptimizeTest, OptimizesUnderAllThreeLayouts) {
  // End-to-end: every TPC-H query optimizes at the DB2-default baseline
  // under each of the paper's three storage configurations.
  static const catalog::Catalog cat = MakeTpchCatalog(100.0);
  const query::Query q = MakeTpchQuery(cat, GetParam());
  for (storage::LayoutPolicy policy :
       {storage::LayoutPolicy::kSharedDevice,
        storage::LayoutPolicy::kPerTableAndIndex,
        storage::LayoutPolicy::kPerTableColocated}) {
    const storage::StorageLayout layout(policy, cat,
                                        query::ReferencedTables(q));
    const storage::ResourceSpace space = layout.BuildResourceSpace();
    const opt::Optimizer optimizer(cat, layout, space);
    const Result<opt::Optimized> r = optimizer.OptimizeAtBaseline(q);
    ASSERT_TRUE(r.ok()) << q.name << " under "
                        << storage::LayoutPolicyName(policy) << ": "
                        << r.status().ToString();
    EXPECT_FALSE(r->plan->id.empty());
    EXPECT_GT(r->total_cost, 0.0);
    EXPECT_EQ(r->plan->usage.size(), space.dims());
    // Every query does CPU work.
    EXPECT_GT(r->plan->usage[space.cpu_dim()], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchOptimizeTest,
                         ::testing::Range(1, 23));

TEST(TpchBlackboxTest, NarrowInterfaceHidesUsage) {
  static const catalog::Catalog cat = MakeTpchCatalog(100.0);
  const query::Query q = MakeTpchQuery(cat, 6);
  const storage::StorageLayout layout(storage::LayoutPolicy::kSharedDevice,
                                      cat, query::ReferencedTables(q));
  const storage::ResourceSpace space = layout.BuildResourceSpace();
  const opt::Optimizer optimizer(cat, layout, space);

  blackbox::NarrowOptimizer narrow(optimizer, q, /*white_box=*/false);
  const core::OracleResult r = narrow.Optimize(space.BaselineCosts());
  EXPECT_FALSE(r.plan_id.empty());
  EXPECT_GT(r.total_cost, 0.0);
  EXPECT_FALSE(r.usage.has_value());
  EXPECT_EQ(narrow.calls(), 1u);

  blackbox::NarrowOptimizer white(optimizer, q, /*white_box=*/true);
  EXPECT_TRUE(white.Optimize(space.BaselineCosts()).usage.has_value());
}

}  // namespace
}  // namespace costsense::tpch
