#!/usr/bin/env bash
# The one CI entry point: configure + build + full test suite + the lint
# gate (machine-readable), then targeted sanitizer builds. Each stage owns
# a stable exit code so automation can tell *what* broke without parsing
# logs:
#
#   0  everything passed
#   2  configure or build failed (plain build tree)
#   3  ctest suite failed
#   4  costsense-lint found violations (its JSON is on stdout) or its
#      configuration is broken (e.g. unparseable layers.toml)
#   5  AddressSanitizer build or its test subset failed
#   6  ThreadSanitizer build or its test subset failed
#   7  streaming-sink stage failed: figure stdout is not byte-identical
#      across artifact sink chains, the compressed sidecar is missing,
#      or the protocol fuzz smoke found a violation
#
# The sanitizer stages rebuild into their own trees (build-asan,
# build-tsan) and run the label subsets the root CMakeLists documents for
# them: resilience under ASan, concurrency under TSan. Set
# COSTSENSE_CI_SKIP_SANITIZERS=1 to stop after the lint gate (fast local
# pre-push loop).
set -u

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
JOBS="${COSTSENSE_CI_JOBS:-$(nproc)}"

stage() { echo "== costsense-ci: $*" >&2; }

stage "configure + build (build/)"
cmake -B "$ROOT/build" -S "$ROOT" >/dev/null || exit 2
cmake --build "$ROOT/build" -j "$JOBS" || exit 2

stage "ctest (full suite)"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS" || exit 3

stage "lint gate (--format json)"
"$ROOT/build/tools/lint/costsense_lint" \
  --format json \
  --relative-to "$ROOT" \
  --exclude "$ROOT/tests/tools/lint/corpus" \
  --layers "$ROOT/tools/lint/layers.toml" \
  --root "$ROOT/src" \
  --root "$ROOT/bench" \
  --root "$ROOT/tests" \
  --root "$ROOT/tools" || exit 4

stage "streaming sinks (chain equivalence + protocol fuzz smoke)"
STREAM_TMP="$(mktemp -d)"
trap 'rm -rf "$STREAM_TMP"' EXIT
env COSTSENSE_QUICK=1 COSTSENSE_ARTIFACT_CHAIN=plain \
  "$ROOT/build/bench/fig5_shared_device" \
  >"$STREAM_TMP/plain.out" 2>/dev/null || exit 7
env COSTSENSE_QUICK=1 COSTSENSE_ARTIFACT_CHAIN=compressed \
  COSTSENSE_ARTIFACT_JSON="$STREAM_TMP/sidecar.jsonl.z" \
  "$ROOT/build/bench/fig5_shared_device" \
  >"$STREAM_TMP/compressed.out" 2>/dev/null || exit 7
if ! cmp -s "$STREAM_TMP/plain.out" "$STREAM_TMP/compressed.out"; then
  echo "costsense-ci: figure stdout differs between plain and compressed" \
       "artifact chains" >&2
  exit 7
fi
if [ ! -s "$STREAM_TMP/sidecar.jsonl.z" ]; then
  echo "costsense-ci: compressed artifact sidecar missing or empty" >&2
  exit 7
fi
"$ROOT/build/tools/fuzz/protocol_fuzz" seed=7 iters=1500 \
  deadline_ms=120000 >/dev/null || exit 7

if [ "${COSTSENSE_CI_SKIP_SANITIZERS:-0}" = "1" ]; then
  stage "sanitizers skipped (COSTSENSE_CI_SKIP_SANITIZERS=1)"
  exit 0
fi

stage "AddressSanitizer (build-asan/, ctest -L resilience)"
cmake -B "$ROOT/build-asan" -S "$ROOT" -DCOSTSENSE_ASAN=ON >/dev/null || exit 5
cmake --build "$ROOT/build-asan" -j "$JOBS" || exit 5
ctest --test-dir "$ROOT/build-asan" -L resilience --output-on-failure \
  -j "$JOBS" || exit 5

stage "ThreadSanitizer (build-tsan/, ctest -L concurrency)"
cmake -B "$ROOT/build-tsan" -S "$ROOT" -DCOSTSENSE_TSAN=ON >/dev/null || exit 6
cmake --build "$ROOT/build-tsan" -j "$JOBS" || exit 6
ctest --test-dir "$ROOT/build-tsan" -L concurrency --output-on-failure \
  -j "$JOBS" || exit 6

stage "all stages passed"
exit 0
