// protocol_fuzz: a seeded, deterministic mutation fuzzer for the
// costsense-serve wire protocol (protocol version 1).
//
// One long-lived Server (quick analysis budgets, shared warm oracle
// cache) receives frames over the in-process transport — byte-for-byte
// the frames a socket client would send, with no kernel in the loop. Each
// iteration takes a valid request frame from a small pool and either
// passes it through untouched or mutates it: random bit flips,
// truncation to an arbitrary prefix, a lying delta-count field, splices
// of two valid frames, trailing junk, pure garbage, or an oversized
// frame past kMaxFrameBytes.
//
// The invariants asserted, per frame:
//   - the server never crashes (any crash fails the run);
//   - every accepted frame gets exactly one response that decodes as a
//     protocol response with a typed status code — never silence;
//   - the client re-runs DecodeRequest on the exact bytes it sent, so it
//     knows which fate the protocol mandates: an undecodable frame must
//     come back with the decoder's own status code and then a clean
//     close (end of stream, not a hang); a decodable frame gets an
//     analysis response on a session that stays open;
//   - the whole run finishes before a wall-clock deadline enforced by a
//     watchdog thread that aborts the process on expiry, so a wedged
//     Recv can never turn the fuzzer into an infinite hang.
//
// The mutation stream is a pure function of `seed`, so any failure
// reproduces with the same command line.
//
// Usage: protocol_fuzz [seed=N] [iters=N] [deadline_ms=N] [verbose=1]
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "runtime/resilience/clock.h"
#include "runtime/thread_pool.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/transport.h"

namespace costsense::fuzz {
namespace {

using serve::AnalysisKind;
using serve::AnalysisRequest;
using serve::AnalysisResponse;

/// Byte offset of the u16 delta-count field in an encoded request
/// (u8 version, u8 kind, u8 policy, u16 query, u64 deadline precede it).
constexpr size_t kDeltaCountOffset = 13;

/// Builds the pool of valid request frames the mutator draws from: all
/// three analysis kinds over two layouts and two cheap queries, so
/// pass-through iterations exercise real analyses against the shared
/// warm cache without blowing the smoke-test budget.
std::vector<std::string> ValidFrames() {
  std::vector<std::string> frames;
  const storage::LayoutPolicy policies[] = {
      storage::LayoutPolicy::kSharedDevice,
      storage::LayoutPolicy::kPerTableColocated};
  const uint16_t queries[] = {1, 6};
  for (const storage::LayoutPolicy policy : policies) {
    for (const uint16_t query : queries) {
      AnalysisRequest discovery;
      discovery.kind = AnalysisKind::kDiscovery;
      discovery.policy = policy;
      discovery.query_number = query;
      discovery.deltas = {100.0};
      frames.push_back(EncodeRequest(discovery));

      AnalysisRequest worst = discovery;
      worst.kind = AnalysisKind::kWorstCase;
      frames.push_back(EncodeRequest(worst));

      AnalysisRequest series = discovery;
      series.kind = AnalysisKind::kGtcSeries;
      series.deltas = {2.0, 10.0, 100.0};
      frames.push_back(EncodeRequest(series));
    }
  }
  return frames;
}

enum class Mutation : uint64_t {
  kPassThrough = 0,
  kBitFlips = 1,
  kTruncate = 2,
  kDeltaCountLie = 3,
  kSplice = 4,
  kTrailingJunk = 5,
  kGarbage = 6,
  kOversized = 7,
};

const char* MutationName(Mutation m) {
  switch (m) {
    case Mutation::kPassThrough:   return "pass-through";
    case Mutation::kBitFlips:      return "bit-flips";
    case Mutation::kTruncate:      return "truncate";
    case Mutation::kDeltaCountLie: return "delta-count-lie";
    case Mutation::kSplice:        return "splice";
    case Mutation::kTrailingJunk:  return "trailing-junk";
    case Mutation::kGarbage:       return "garbage";
    case Mutation::kOversized:     return "oversized";
  }
  return "?";
}

/// Draws the next frame to send. Pass-through gets a double weight so the
/// server keeps doing real work between attacks; oversized gets a half
/// weight (it allocates kMaxFrameBytes + 1 every time).
Mutation PickMutation(Rng& rng) {
  const uint64_t roll = rng.Index(16);
  if (roll < 3) return Mutation::kPassThrough;
  if (roll < 6) return Mutation::kBitFlips;
  if (roll < 8) return Mutation::kTruncate;
  if (roll < 10) return Mutation::kDeltaCountLie;
  if (roll < 12) return Mutation::kSplice;
  if (roll < 14) return Mutation::kTrailingJunk;
  if (roll < 15) return Mutation::kGarbage;
  return Mutation::kOversized;
}

std::string RandomBytes(Rng& rng, size_t n) {
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(rng.Index(256)));
  }
  return out;
}

std::string Mutate(Mutation mutation, Rng& rng,
                   const std::vector<std::string>& pool) {
  const std::string& base = pool[rng.Index(pool.size())];
  switch (mutation) {
    case Mutation::kPassThrough:
      return base;
    case Mutation::kBitFlips: {
      std::string frame = base;
      const uint64_t flips = 1 + rng.Index(8);
      for (uint64_t i = 0; i < flips; ++i) {
        const uint64_t bit = rng.Index(frame.size() * 8);
        frame[bit / 8] = static_cast<char>(
            static_cast<uint8_t>(frame[bit / 8]) ^ (1u << (bit % 8)));
      }
      return frame;
    }
    case Mutation::kTruncate:
      return base.substr(0, rng.Index(base.size()));
    case Mutation::kDeltaCountLie: {
      // Claim an arbitrary delta count while leaving the payload bytes
      // alone: the decoder must catch the length/content mismatch (or
      // the > kMaxDeltas bound), never read past the end.
      std::string frame = base;
      const uint16_t lie = static_cast<uint16_t>(rng.Index(1 << 16));
      frame[kDeltaCountOffset] = static_cast<char>(lie >> 8);
      frame[kDeltaCountOffset + 1] = static_cast<char>(lie & 0xff);
      return frame;
    }
    case Mutation::kSplice: {
      const std::string& other = pool[rng.Index(pool.size())];
      return base.substr(0, rng.Index(base.size() + 1)) +
             other.substr(rng.Index(other.size() + 1));
    }
    case Mutation::kTrailingJunk:
      return base + RandomBytes(rng, 1 + rng.Index(16));
    case Mutation::kGarbage:
      return RandomBytes(rng, rng.Index(64));
    case Mutation::kOversized:
      return std::string(serve::kMaxFrameBytes + 1, 'x');
  }
  return base;
}

/// One live session against the shared server: the client endpoint plus
/// the thread running the server half. Recreated whenever the session
/// closes (which the protocol mandates after any malformed frame).
struct LiveSession {
  std::unique_ptr<serve::InProcessTransport> client;
  std::thread server_thread;

  explicit LiveSession(serve::Server& server) {
    auto [client_end, server_end] = serve::InProcessTransport::CreatePair();
    client = std::move(client_end);
    std::unique_ptr<serve::FrameTransport> transport = std::move(server_end);
    server_thread = std::thread([&server, t = std::move(transport)]() mutable {
      serve::Session session(server, std::move(t));
      // Malformed frames end sessions with kInvalidArgument by design;
      // the fuzzer's invariants live on the client side of the pair.
      const Status status = session.Run();
      (void)status;
    });
  }

  ~LiveSession() {
    client->Close();
    if (server_thread.joinable()) server_thread.join();
  }
};

struct FuzzTally {
  uint64_t sent = 0;
  uint64_t ok_responses = 0;
  uint64_t typed_errors = 0;
  uint64_t client_rejected = 0;
  uint64_t eof_after_send = 0;
  uint64_t sessions = 0;
};

int Fail(uint64_t iter, Mutation mutation, const char* what,
         const Status& status) {
  std::fprintf(stderr,
               "protocol_fuzz: FAIL at iteration %llu (%s): %s: %s\n",
               static_cast<unsigned long long>(iter), MutationName(mutation),
               what, status.ToString().c_str());
  return 1;
}

int Run(uint64_t seed, uint64_t iters, uint64_t deadline_ms, bool verbose) {
  // Watchdog: the whole run must finish before the deadline. A server
  // that swallows a frame without responding would park the fuzzer in
  // RecvFrame forever; this turns that hang into a loud abort.
  std::atomic<bool> done{false};
  std::thread watchdog([&done, deadline_ms] {
    runtime::resilience::Clock& clk = runtime::resilience::Clock::Real();
    const uint64_t deadline_ns = deadline_ms * 1'000'000ULL;
    const uint64_t start = clk.NowNanos();
    while (!done.load(std::memory_order_acquire)) {
      if (clk.NowNanos() - start >= deadline_ns) {
        std::fprintf(stderr,
                     "protocol_fuzz: HANG — run exceeded %llu ms deadline\n",
                     static_cast<unsigned long long>(deadline_ms));
        std::abort();
      }
      clk.SleepFor(10'000'000);  // re-check every 10 ms
    }
  });

  runtime::ThreadPool pool(1);
  serve::ServerOptions options;
  options.dispatcher.pool = &pool;
  // Quick analysis budgets (the bench_util quick preset): accidental
  // valid mutants trigger real analyses, and each must cost tens of
  // milliseconds, not seconds.
  options.dispatcher.discovery.random_samples = 16;
  options.dispatcher.discovery.sampled_vertices = 48;
  options.dispatcher.discovery.bisection_depth = 3;
  options.dispatcher.discovery.completeness_rounds = 1;
  serve::Server server(options);

  const std::vector<std::string> pool_frames = ValidFrames();
  Rng rng(seed);
  FuzzTally tally;
  int exit_code = 0;

  std::unique_ptr<LiveSession> session =
      std::make_unique<LiveSession>(server);
  ++tally.sessions;

  for (uint64_t iter = 0; iter < iters && exit_code == 0; ++iter) {
    const Mutation mutation = PickMutation(rng);
    const std::string frame = Mutate(mutation, rng, pool_frames);
    if (verbose) {
      std::fprintf(stderr, "protocol_fuzz: iter=%llu %s len=%zu ",
                   static_cast<unsigned long long>(iter),
                   MutationName(mutation), frame.size());
      for (size_t i = 0; i < frame.size() && i < 64; ++i) {
        std::fprintf(stderr, "%02x", static_cast<uint8_t>(frame[i]));
      }
      std::fprintf(stderr, "\n");
    }

    // The client knows the bytes it sent, so it can predict the server's
    // move: an undecodable frame must come back as a typed error with
    // the decoder's exact status code followed by a clean close; a
    // decodable frame gets an analysis response (any typed code — a
    // mutant may still carry an impossible deadline) on a session that
    // stays open.
    const Result<AnalysisRequest> predicted = serve::DecodeRequest(frame);

    const Status sent = session->client->SendFrame(frame);
    if (!sent.ok()) {
      // The transport itself may reject a frame (oversized) — that must
      // be a typed error, and the session must stay usable.
      if (sent.code() != StatusCode::kInvalidArgument) {
        exit_code = Fail(iter, mutation, "send rejected with wrong code", sent);
        break;
      }
      ++tally.client_rejected;
      continue;
    }
    ++tally.sent;

    Result<std::string> reply = session->client->RecvFrame();
    if (!reply.ok()) {
      // End of stream without a response frame: the session send path
      // failed after our frame arrived. Anything else is a violation.
      if (reply.status().code() != StatusCode::kNotFound) {
        exit_code = Fail(iter, mutation, "recv failed", reply.status());
        break;
      }
      ++tally.eof_after_send;
      session = std::make_unique<LiveSession>(server);
      ++tally.sessions;
      continue;
    }

    const Result<AnalysisResponse> response = serve::DecodeResponse(*reply);
    if (!response.ok()) {
      // The server's response bytes must always decode — a malformed
      // *response* is a server bug regardless of what we sent.
      exit_code =
          Fail(iter, mutation, "undecodable response", response.status());
      break;
    }
    if (predicted.ok()) {
      // Valid request: the response carries whatever typed code the
      // analysis produced and the session must stay open for the next
      // frame. kOk responses must carry the rendered analysis.
      if (response->ok()) {
        ++tally.ok_responses;
        if (response->body.empty()) {
          exit_code = Fail(iter, mutation, "empty success body", Status::Ok());
          break;
        }
      } else {
        ++tally.typed_errors;
      }
    } else {
      // Malformed frame: the typed error must mirror the decoder's own
      // verdict, and the session drops the connection — the next recv
      // must be a clean end of stream, then we reconnect.
      ++tally.typed_errors;
      if (response->code != predicted.status().code()) {
        exit_code = Fail(iter, mutation, "wrong error code for bad frame",
                         predicted.status());
        break;
      }
      const Result<std::string> eof = session->client->RecvFrame();
      if (eof.ok() || eof.status().code() != StatusCode::kNotFound) {
        exit_code = Fail(iter, mutation, "no clean close after error",
                         eof.ok() ? Status::Ok() : eof.status());
        break;
      }
      session = std::make_unique<LiveSession>(server);
      ++tally.sessions;
    }
    if (verbose && (iter + 1) % 1000 == 0) {
      std::fprintf(stderr, "protocol_fuzz: %llu/%llu iterations\n",
                   static_cast<unsigned long long>(iter + 1),
                   static_cast<unsigned long long>(iters));
    }
  }

  session.reset();
  server.Shutdown();
  done.store(true, std::memory_order_release);
  watchdog.join();

  if (exit_code == 0) {
    std::printf(
        "protocol_fuzz: PASS seed=%llu iters=%llu sent=%llu ok=%llu "
        "typed_errors=%llu client_rejected=%llu eof_after_send=%llu "
        "sessions=%llu\n",
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(iters),
        static_cast<unsigned long long>(tally.sent),
        static_cast<unsigned long long>(tally.ok_responses),
        static_cast<unsigned long long>(tally.typed_errors),
        static_cast<unsigned long long>(tally.client_rejected),
        static_cast<unsigned long long>(tally.eof_after_send),
        static_cast<unsigned long long>(tally.sessions));
  }
  return exit_code;
}

int Main(int argc, char** argv) {
  uint64_t seed = 1;
  uint64_t iters = 10000;
  uint64_t deadline_ms = 300000;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "protocol_fuzz: unknown argument %s\n", arg.c_str());
      return 2;
    }
    const std::string key = arg.substr(0, eq);
    const uint64_t value =
        static_cast<uint64_t>(std::atoll(arg.c_str() + eq + 1));
    if (key == "seed") {
      seed = value;
    } else if (key == "iters") {
      iters = value;
    } else if (key == "deadline_ms") {
      deadline_ms = value;
    } else if (key == "verbose") {
      verbose = value != 0;
    } else {
      std::fprintf(stderr, "protocol_fuzz: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }
  return Run(seed, iters, deadline_ms, verbose);
}

}  // namespace
}  // namespace costsense::fuzz

int main(int argc, char** argv) { return costsense::fuzz::Main(argc, argv); }
