// protocol_fuzz: a seeded, deterministic mutation fuzzer for the
// costsense-serve wire protocol (versions 1 and 2).
//
// One long-lived Server (quick analysis budgets, shared warm oracle
// cache) receives frames over the in-process transport — byte-for-byte
// the frames a socket client would send, with no kernel in the loop. Each
// iteration takes a valid request frame from a small pool (v1 and v2,
// with and without feasible-region boxes) and either passes it through
// untouched or mutates it: random bit flips, truncation to an arbitrary
// prefix, a lying delta-count field, splices of two valid frames,
// trailing junk, pure garbage, an oversized frame past kMaxFrameBytes,
// or a corrupted v2 box section (flag lies, dimension lies, truncation
// inside the bounds, swapped lower/upper).
//
// Three iterations in twenty skip the server and attack the client-side
// v2 ResponseReassembler instead: a synthetic valid response stream is
// truncated at a frame or record boundary, given a lying record length
// prefix, or spliced with a rogue terminal status frame mid-stream.
//
// The invariants asserted, per server frame:
//   - the server never crashes (any crash fails the run);
//   - every accepted frame gets exactly one reply that decodes — a v1
//     response or a v2 frame stream the reassembler accepts — never
//     silence;
//   - the client re-runs DecodeRequest on the exact bytes it sent, so it
//     knows which fate the protocol mandates: an undecodable frame must
//     come back with the decoder's own status code (as a v1 error
//     response, or a lone v2 status frame when the version byte claimed
//     v2) and then a clean close (end of stream, not a hang); a
//     decodable frame gets an analysis response on a session that stays
//     open;
//   - the whole run finishes before a wall-clock deadline enforced by a
//     watchdog thread that aborts the process on expiry, so a wedged
//     Recv can never turn the fuzzer into an infinite hang.
//
// And per reassembler stream:
//   - Feed never crashes, and every rejection is a typed
//     kInvalidArgument;
//   - a stream cut at a frame boundary before its terminal status frame
//     never reports done() — truncation is always detectable;
//   - a stream that reassembles to kOk despite a mid-frame cut yields a
//     strict prefix of the original record bytes, never invented data;
//   - a rogue terminal status frame with frames still behind it is
//     always rejected.
//
// The mutation stream is a pure function of `seed`, so any failure
// reproduces with the same command line.
//
// Usage: protocol_fuzz [seed=N] [iters=N] [deadline_ms=N] [verbose=1]
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/feasible_region.h"
#include "runtime/resilience/clock.h"
#include "runtime/thread_pool.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/transport.h"

namespace costsense::fuzz {
namespace {

using serve::AnalysisKind;
using serve::AnalysisRequest;
using serve::AnalysisResponse;

/// Byte offset of the u16 delta-count field in an encoded request
/// (u8 version, u8 kind, u8 policy, u16 query, u64 deadline precede it).
constexpr size_t kDeltaCountOffset = 13;

/// A valid 3-dimensional feasible-region box (the shared-device cost
/// space: seek, transfer, cpu). v2 requests carrying it run real
/// explicit-box analyses under kSharedDevice and draw the dispatcher's
/// typed dimension-mismatch error under kPerTableColocated — both are
/// protocol-legal outcomes the invariants below accept.
core::Box FuzzBox() {
  Result<core::Box> box =
      core::Box::Validated(core::CostVector({0.5, 0.25, 0.125}),
                           core::CostVector({8.0, 16.0, 4.0}));
  return *box;
}

/// Builds the pool of valid request frames the mutator draws from: all
/// three analysis kinds over two layouts and two cheap queries, in both
/// protocol versions, so pass-through iterations exercise real analyses
/// (single-payload and streamed) against the shared warm cache without
/// blowing the smoke-test budget.
std::vector<std::string> ValidFrames() {
  std::vector<std::string> frames;
  const storage::LayoutPolicy policies[] = {
      storage::LayoutPolicy::kSharedDevice,
      storage::LayoutPolicy::kPerTableColocated};
  const uint16_t queries[] = {1, 6};
  for (const storage::LayoutPolicy policy : policies) {
    for (const uint16_t query : queries) {
      AnalysisRequest discovery;
      discovery.kind = AnalysisKind::kDiscovery;
      discovery.policy = policy;
      discovery.query_number = query;
      discovery.deltas = {100.0};
      frames.push_back(EncodeRequest(discovery));

      AnalysisRequest worst = discovery;
      worst.kind = AnalysisKind::kWorstCase;
      frames.push_back(EncodeRequest(worst));

      AnalysisRequest series = discovery;
      series.kind = AnalysisKind::kGtcSeries;
      series.deltas = {2.0, 10.0, 100.0};
      frames.push_back(EncodeRequest(series));

      AnalysisRequest v2 = discovery;
      v2.version = serve::kProtocolVersionV2;
      frames.push_back(EncodeRequest(v2));

      AnalysisRequest v2_box = worst;
      v2_box.version = serve::kProtocolVersionV2;
      v2_box.box = FuzzBox();
      frames.push_back(EncodeRequest(v2_box));
    }
  }
  return frames;
}

enum class Mutation : uint64_t {
  kPassThrough = 0,
  kBitFlips = 1,
  kTruncate = 2,
  kDeltaCountLie = 3,
  kSplice = 4,
  kTrailingJunk = 5,
  kGarbage = 6,
  kOversized = 7,
  kBoxCorrupt = 8,
  // The remaining classes never reach the server: they attack the
  // client-side v2 ResponseReassembler with mutated response streams.
  kStreamTruncate = 9,
  kStreamLengthLie = 10,
  kStreamRogueStatus = 11,
};

const char* MutationName(Mutation m) {
  switch (m) {
    case Mutation::kPassThrough:       return "pass-through";
    case Mutation::kBitFlips:          return "bit-flips";
    case Mutation::kTruncate:          return "truncate";
    case Mutation::kDeltaCountLie:     return "delta-count-lie";
    case Mutation::kSplice:            return "splice";
    case Mutation::kTrailingJunk:      return "trailing-junk";
    case Mutation::kGarbage:           return "garbage";
    case Mutation::kOversized:         return "oversized";
    case Mutation::kBoxCorrupt:        return "box-corrupt";
    case Mutation::kStreamTruncate:    return "stream-truncate";
    case Mutation::kStreamLengthLie:   return "stream-length-lie";
    case Mutation::kStreamRogueStatus: return "stream-rogue-status";
  }
  return "?";
}

/// True for the classes that fuzz the ResponseReassembler in-process
/// instead of sending a frame to the server.
bool IsStreamMutation(Mutation m) {
  return m == Mutation::kStreamTruncate || m == Mutation::kStreamLengthLie ||
         m == Mutation::kStreamRogueStatus;
}

/// Draws the next frame to send. Pass-through gets a triple weight so the
/// server keeps doing real work between attacks; oversized gets a single
/// slot (it allocates kMaxFrameBytes + 1 every time).
Mutation PickMutation(Rng& rng) {
  const uint64_t roll = rng.Index(20);
  if (roll < 3) return Mutation::kPassThrough;
  if (roll < 6) return Mutation::kBitFlips;
  if (roll < 8) return Mutation::kTruncate;
  if (roll < 10) return Mutation::kDeltaCountLie;
  if (roll < 12) return Mutation::kSplice;
  if (roll < 14) return Mutation::kTrailingJunk;
  if (roll < 15) return Mutation::kGarbage;
  if (roll < 16) return Mutation::kOversized;
  if (roll < 17) return Mutation::kBoxCorrupt;
  if (roll < 18) return Mutation::kStreamTruncate;
  if (roll < 19) return Mutation::kStreamLengthLie;
  return Mutation::kStreamRogueStatus;
}

std::string RandomBytes(Rng& rng, size_t n) {
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(rng.Index(256)));
  }
  return out;
}

int Fail(uint64_t iter, Mutation mutation, const char* what,
         const Status& status) {
  std::fprintf(stderr,
               "protocol_fuzz: FAIL at iteration %llu (%s): %s: %s\n",
               static_cast<unsigned long long>(iter), MutationName(mutation),
               what, status.ToString().c_str());
  return 1;
}

std::string Mutate(Mutation mutation, Rng& rng,
                   const std::vector<std::string>& pool) {
  const std::string& base = pool[rng.Index(pool.size())];
  switch (mutation) {
    case Mutation::kPassThrough:
      return base;
    case Mutation::kBitFlips: {
      std::string frame = base;
      const uint64_t flips = 1 + rng.Index(8);
      for (uint64_t i = 0; i < flips; ++i) {
        const uint64_t bit = rng.Index(frame.size() * 8);
        frame[bit / 8] = static_cast<char>(
            static_cast<uint8_t>(frame[bit / 8]) ^ (1u << (bit % 8)));
      }
      return frame;
    }
    case Mutation::kTruncate:
      return base.substr(0, rng.Index(base.size()));
    case Mutation::kDeltaCountLie: {
      // Claim an arbitrary delta count while leaving the payload bytes
      // alone: the decoder must catch the length/content mismatch (or
      // the > kMaxDeltas bound), never read past the end.
      std::string frame = base;
      const uint16_t lie = static_cast<uint16_t>(rng.Index(1 << 16));
      frame[kDeltaCountOffset] = static_cast<char>(lie >> 8);
      frame[kDeltaCountOffset + 1] = static_cast<char>(lie & 0xff);
      return frame;
    }
    case Mutation::kSplice: {
      const std::string& other = pool[rng.Index(pool.size())];
      return base.substr(0, rng.Index(base.size() + 1)) +
             other.substr(rng.Index(other.size() + 1));
    }
    case Mutation::kTrailingJunk:
      return base + RandomBytes(rng, 1 + rng.Index(16));
    case Mutation::kGarbage:
      return RandomBytes(rng, rng.Index(64));
    case Mutation::kOversized:
      return std::string(serve::kMaxFrameBytes + 1, 'x');
    case Mutation::kBoxCorrupt: {
      // A fresh v2 request with one delta and the 3-dim box, then
      // targeted surgery on the box section. Offsets: 15 bytes of fixed
      // header + 8 for the single delta put has_box at 23, dims at 24,
      // the six f64 bounds at 26.
      AnalysisRequest request;
      request.version = serve::kProtocolVersionV2;
      request.kind = AnalysisKind::kWorstCase;
      request.policy = rng.Index(2) == 0
                           ? storage::LayoutPolicy::kSharedDevice
                           : storage::LayoutPolicy::kPerTableColocated;
      request.query_number = rng.Index(2) == 0 ? 1 : 6;
      request.deltas = {100.0};
      request.box = FuzzBox();
      std::string frame = EncodeRequest(request);
      constexpr size_t kBoxOffset = 23;
      switch (rng.Index(4)) {
        case 0:  // has_box flag outside {0, 1}
          frame[kBoxOffset] = static_cast<char>(2 + rng.Index(254));
          break;
        case 1: {  // dimension-count lie
          const uint16_t lie = static_cast<uint16_t>(rng.Index(1 << 16));
          frame[kBoxOffset + 1] = static_cast<char>(lie >> 8);
          frame[kBoxOffset + 2] = static_cast<char>(lie & 0xff);
          break;
        }
        case 2:  // truncation inside the box section
          frame = frame.substr(
              0, kBoxOffset + rng.Index(frame.size() - kBoxOffset));
          break;
        default:  // swap the bound blocks: every lower lands above its upper
          std::swap_ranges(frame.begin() + kBoxOffset + 3,
                           frame.begin() + kBoxOffset + 3 + 24,
                           frame.begin() + kBoxOffset + 3 + 24);
          break;
      }
      return frame;
    }
    case Mutation::kStreamTruncate:
    case Mutation::kStreamLengthLie:
    case Mutation::kStreamRogueStatus:
      break;  // handled by FuzzStream, never encoded as a request
  }
  return base;
}

/// A synthetic, valid v2 response stream — header, one to three record
/// frames, terminal OK status — plus the concatenated record bytes it
/// should reassemble to.
std::vector<std::string> ValidStream(Rng& rng, std::string* body) {
  body->clear();
  std::vector<std::string> frames;
  serve::ResponseFrame header;
  header.type = serve::ResponseFrameType::kHeader;
  header.kind = static_cast<AnalysisKind>(rng.Index(3));
  header.policy = rng.Index(2) == 0 ? storage::LayoutPolicy::kSharedDevice
                                    : storage::LayoutPolicy::kPerTableColocated;
  header.query_number = static_cast<uint16_t>(1 + rng.Index(22));
  frames.push_back(EncodeResponseFrame(header));
  const uint64_t record_frames = 1 + rng.Index(3);
  for (uint64_t f = 0; f < record_frames; ++f) {
    serve::ResponseFrame records;
    records.type = serve::ResponseFrameType::kRecords;
    const uint64_t count = 1 + rng.Index(4);
    for (uint64_t r = 0; r < count; ++r) {
      records.records.push_back(RandomBytes(rng, rng.Index(32)));
      body->append(records.records.back());
    }
    frames.push_back(EncodeResponseFrame(records));
  }
  serve::ResponseFrame status;
  status.type = serve::ResponseFrameType::kStatus;
  status.code = StatusCode::kOk;
  frames.push_back(EncodeResponseFrame(status));
  return frames;
}

/// Feeds a mutated response stream to a fresh ResponseReassembler and
/// checks the class-specific invariant. Returns 0 on pass.
int FuzzStream(Mutation mutation, Rng& rng, uint64_t iter) {
  std::string body;
  std::vector<std::string> frames = ValidStream(rng, &body);
  bool cut_at_frame_boundary = false;
  switch (mutation) {
    case Mutation::kStreamTruncate:
      if (rng.Index(2) == 0) {
        // Frame-boundary cut: drop the tail (always including the
        // terminal status frame... or a whole record frame plus it).
        frames.resize(1 + rng.Index(frames.size() - 1));
        cut_at_frame_boundary = true;
      } else {
        // Mid-frame cut: sever one frame's bytes at an arbitrary point
        // (possibly inside a record length prefix) and drop the rest.
        const uint64_t victim = rng.Index(frames.size());
        frames[victim] =
            frames[victim].substr(0, rng.Index(frames[victim].size()));
        frames.resize(victim + 1);
      }
      break;
    case Mutation::kStreamLengthLie: {
      // Rewrite the first record's u32 length prefix in the first
      // records frame: half the draws lie huge (must be rejected — the
      // claimed record runs past the frame), half lie small (shifts
      // record boundaries; the stream may still parse, but must never
      // crash or hang).
      std::string& frame = frames[1];
      const uint32_t lie = rng.Index(2) == 0
                               ? static_cast<uint32_t>(rng.Index(1u << 31))
                               : static_cast<uint32_t>(rng.Index(32));
      frame[2] = static_cast<char>(lie >> 24);
      frame[3] = static_cast<char>((lie >> 16) & 0xff);
      frame[4] = static_cast<char>((lie >> 8) & 0xff);
      frame[5] = static_cast<char>(lie & 0xff);
      break;
    }
    case Mutation::kStreamRogueStatus: {
      // Splice a terminal status frame in with frames still behind it:
      // whatever state it lands in, the reassembler must reject the
      // stream rather than silently drop the tail.
      serve::ResponseFrame rogue;
      rogue.type = serve::ResponseFrameType::kStatus;
      if (rng.Index(2) == 0) {
        rogue.code = StatusCode::kOk;
      } else {
        rogue.code = StatusCode::kDeadlineExceeded;
        rogue.message = "rogue";
      }
      frames.insert(frames.begin() + rng.Index(frames.size() - 1),
                    EncodeResponseFrame(rogue));
      break;
    }
    default:
      break;
  }

  serve::ResponseReassembler reassembler;
  Status error = Status::Ok();
  for (const std::string& frame : frames) {
    error = reassembler.Feed(frame);
    if (!error.ok()) break;
  }
  if (!error.ok() && error.code() != StatusCode::kInvalidArgument) {
    return Fail(iter, mutation, "stream rejected with wrong code", error);
  }
  switch (mutation) {
    case Mutation::kStreamTruncate:
      if (cut_at_frame_boundary && error.ok() && reassembler.done()) {
        // Every frame up to the cut is individually valid, so no Feed
        // may fail — but the missing terminal frame must be missed.
        return Fail(iter, mutation,
                    "frame-boundary truncation reported a complete stream",
                    Status::Ok());
      }
      if (error.ok() && reassembler.done() &&
          reassembler.response().code == StatusCode::kOk) {
        const std::string& got = reassembler.response().body;
        if (got.size() > body.size() ||
            body.compare(0, got.size(), got) != 0) {
          return Fail(iter, mutation,
                      "truncated stream reassembled to a non-prefix",
                      Status::Ok());
        }
      }
      break;
    case Mutation::kStreamRogueStatus:
      if (error.ok()) {
        return Fail(iter, mutation, "rogue status frame accepted silently",
                    Status::Ok());
      }
      break;
    default:
      break;  // length-lie: typed-error-or-parse is all that must hold
  }
  return 0;
}

/// One live session against the shared server: the client endpoint plus
/// the thread running the server half. Recreated whenever the session
/// closes (which the protocol mandates after any malformed frame).
struct LiveSession {
  std::unique_ptr<serve::InProcessTransport> client;
  std::thread server_thread;

  explicit LiveSession(serve::Server& server) {
    auto [client_end, server_end] = serve::InProcessTransport::CreatePair();
    client = std::move(client_end);
    std::unique_ptr<serve::FrameTransport> transport = std::move(server_end);
    server_thread = std::thread([&server, t = std::move(transport)]() mutable {
      serve::Session session(server, std::move(t));
      // Malformed frames end sessions with kInvalidArgument by design;
      // the fuzzer's invariants live on the client side of the pair.
      const Status status = session.Run();
      (void)status;
    });
  }

  ~LiveSession() {
    client->Close();
    if (server_thread.joinable()) server_thread.join();
  }
};

struct FuzzTally {
  uint64_t sent = 0;
  uint64_t ok_responses = 0;
  uint64_t typed_errors = 0;
  uint64_t client_rejected = 0;
  uint64_t eof_after_send = 0;
  uint64_t sessions = 0;
  uint64_t streams = 0;  // reassembler streams fuzzed in-process
};

int Run(uint64_t seed, uint64_t iters, uint64_t deadline_ms, bool verbose) {
  // Watchdog: the whole run must finish before the deadline. A server
  // that swallows a frame without responding would park the fuzzer in
  // RecvFrame forever; this turns that hang into a loud abort.
  std::atomic<bool> done{false};
  std::thread watchdog([&done, deadline_ms] {
    runtime::resilience::Clock& clk = runtime::resilience::Clock::Real();
    const uint64_t deadline_ns = deadline_ms * 1'000'000ULL;
    const uint64_t start = clk.NowNanos();
    while (!done.load(std::memory_order_acquire)) {
      if (clk.NowNanos() - start >= deadline_ns) {
        std::fprintf(stderr,
                     "protocol_fuzz: HANG — run exceeded %llu ms deadline\n",
                     static_cast<unsigned long long>(deadline_ms));
        std::abort();
      }
      clk.SleepFor(10'000'000);  // re-check every 10 ms
    }
  });

  runtime::ThreadPool pool(1);
  serve::ServerOptions options;
  options.dispatcher.pool = &pool;
  // Quick analysis budgets (the bench_util quick preset): accidental
  // valid mutants trigger real analyses, and each must cost tens of
  // milliseconds, not seconds.
  options.dispatcher.discovery.random_samples = 16;
  options.dispatcher.discovery.sampled_vertices = 48;
  options.dispatcher.discovery.bisection_depth = 3;
  options.dispatcher.discovery.completeness_rounds = 1;
  serve::Server server(options);

  const std::vector<std::string> pool_frames = ValidFrames();
  Rng rng(seed);
  FuzzTally tally;
  int exit_code = 0;

  std::unique_ptr<LiveSession> session =
      std::make_unique<LiveSession>(server);
  ++tally.sessions;

  for (uint64_t iter = 0; iter < iters && exit_code == 0; ++iter) {
    const Mutation mutation = PickMutation(rng);
    if (IsStreamMutation(mutation)) {
      exit_code = FuzzStream(mutation, rng, iter);
      ++tally.streams;
      continue;
    }
    const std::string frame = Mutate(mutation, rng, pool_frames);
    if (verbose) {
      std::fprintf(stderr, "protocol_fuzz: iter=%llu %s len=%zu ",
                   static_cast<unsigned long long>(iter),
                   MutationName(mutation), frame.size());
      for (size_t i = 0; i < frame.size() && i < 64; ++i) {
        std::fprintf(stderr, "%02x", static_cast<uint8_t>(frame[i]));
      }
      std::fprintf(stderr, "\n");
    }

    // The client knows the bytes it sent, so it can predict the server's
    // move: an undecodable frame must come back as a typed error with
    // the decoder's exact status code followed by a clean close; a
    // decodable frame gets an analysis response (any typed code — a
    // mutant may still carry an impossible deadline) on a session that
    // stays open.
    const Result<AnalysisRequest> predicted = serve::DecodeRequest(frame);

    const Status sent = session->client->SendFrame(frame);
    if (!sent.ok()) {
      // The transport itself may reject a frame (oversized) — that must
      // be a typed error, and the session must stay usable.
      if (sent.code() != StatusCode::kInvalidArgument) {
        exit_code = Fail(iter, mutation, "send rejected with wrong code", sent);
        break;
      }
      ++tally.client_rejected;
      continue;
    }
    ++tally.sent;

    if (predicted.ok() && predicted->version >= serve::kProtocolVersionV2) {
      // Decodable v2 request: the reply is a frame stream the server
      // must keep grammatical end to end — header first, records, one
      // terminal status — on a session that stays open.
      serve::ResponseReassembler reassembler;
      bool settled = false;
      while (!reassembler.done()) {
        Result<std::string> piece = session->client->RecvFrame();
        if (!piece.ok()) {
          if (piece.status().code() != StatusCode::kNotFound) {
            exit_code =
                Fail(iter, mutation, "recv failed mid-stream", piece.status());
          } else {
            // End of stream before the terminal frame: the session's
            // send path failed. Reconnect, like the v1 eof case.
            ++tally.eof_after_send;
            session = std::make_unique<LiveSession>(server);
            ++tally.sessions;
          }
          settled = true;
          break;
        }
        const Status fed = reassembler.Feed(*piece);
        if (!fed.ok()) {
          exit_code = Fail(iter, mutation,
                           "server stream rejected by reassembler", fed);
          settled = true;
          break;
        }
      }
      if (settled) continue;
      const AnalysisResponse& streamed = reassembler.response();
      if (streamed.ok()) {
        ++tally.ok_responses;
        if (streamed.body.empty()) {
          exit_code = Fail(iter, mutation, "empty success body", Status::Ok());
        }
      } else {
        ++tally.typed_errors;
      }
      continue;
    }

    Result<std::string> reply = session->client->RecvFrame();
    if (!reply.ok()) {
      // End of stream without a response frame: the session send path
      // failed after our frame arrived. Anything else is a violation.
      if (reply.status().code() != StatusCode::kNotFound) {
        exit_code = Fail(iter, mutation, "recv failed", reply.status());
        break;
      }
      ++tally.eof_after_send;
      session = std::make_unique<LiveSession>(server);
      ++tally.sessions;
      continue;
    }

    if (!predicted.ok()) {
      // Malformed frame: the typed error must mirror the decoder's own
      // verdict — as a lone v2 status frame when the version byte
      // claimed v2, as a v1 error response otherwise — and the session
      // drops the connection: the next recv must be a clean end of
      // stream, then we reconnect.
      ++tally.typed_errors;
      StatusCode replied;
      if (!frame.empty() &&
          static_cast<uint8_t>(frame[0]) == serve::kProtocolVersionV2) {
        serve::ResponseReassembler reassembler;
        const Status fed = reassembler.Feed(*reply);
        if (!fed.ok() || !reassembler.done()) {
          exit_code = Fail(iter, mutation,
                           "bad v2 frame not answered by a lone status frame",
                           fed.ok() ? Status::Ok() : fed);
          break;
        }
        replied = reassembler.response().code;
      } else {
        const Result<AnalysisResponse> response =
            serve::DecodeResponse(*reply);
        if (!response.ok()) {
          exit_code =
              Fail(iter, mutation, "undecodable response", response.status());
          break;
        }
        replied = response->code;
      }
      if (replied != predicted.status().code()) {
        exit_code = Fail(iter, mutation, "wrong error code for bad frame",
                         predicted.status());
        break;
      }
      const Result<std::string> eof = session->client->RecvFrame();
      if (eof.ok() || eof.status().code() != StatusCode::kNotFound) {
        exit_code = Fail(iter, mutation, "no clean close after error",
                         eof.ok() ? Status::Ok() : eof.status());
        break;
      }
      session = std::make_unique<LiveSession>(server);
      ++tally.sessions;
      continue;
    }

    // Valid v1 request: the single response carries whatever typed code
    // the analysis produced and the session must stay open for the next
    // frame. kOk responses must carry the rendered analysis.
    const Result<AnalysisResponse> response = serve::DecodeResponse(*reply);
    if (!response.ok()) {
      // The server's response bytes must always decode — a malformed
      // *response* is a server bug regardless of what we sent.
      exit_code =
          Fail(iter, mutation, "undecodable response", response.status());
      break;
    }
    if (response->ok()) {
      ++tally.ok_responses;
      if (response->body.empty()) {
        exit_code = Fail(iter, mutation, "empty success body", Status::Ok());
        break;
      }
    } else {
      ++tally.typed_errors;
    }
    if (verbose && (iter + 1) % 1000 == 0) {
      std::fprintf(stderr, "protocol_fuzz: %llu/%llu iterations\n",
                   static_cast<unsigned long long>(iter + 1),
                   static_cast<unsigned long long>(iters));
    }
  }

  session.reset();
  server.Shutdown();
  done.store(true, std::memory_order_release);
  watchdog.join();

  if (exit_code == 0) {
    std::printf(
        "protocol_fuzz: PASS seed=%llu iters=%llu sent=%llu ok=%llu "
        "typed_errors=%llu client_rejected=%llu eof_after_send=%llu "
        "sessions=%llu streams=%llu\n",
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(iters),
        static_cast<unsigned long long>(tally.sent),
        static_cast<unsigned long long>(tally.ok_responses),
        static_cast<unsigned long long>(tally.typed_errors),
        static_cast<unsigned long long>(tally.client_rejected),
        static_cast<unsigned long long>(tally.eof_after_send),
        static_cast<unsigned long long>(tally.sessions),
        static_cast<unsigned long long>(tally.streams));
  }
  return exit_code;
}

int Main(int argc, char** argv) {
  uint64_t seed = 1;
  uint64_t iters = 10000;
  uint64_t deadline_ms = 300000;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "protocol_fuzz: unknown argument %s\n", arg.c_str());
      return 2;
    }
    const std::string key = arg.substr(0, eq);
    const uint64_t value =
        static_cast<uint64_t>(std::atoll(arg.c_str() + eq + 1));
    if (key == "seed") {
      seed = value;
    } else if (key == "iters") {
      iters = value;
    } else if (key == "deadline_ms") {
      deadline_ms = value;
    } else if (key == "verbose") {
      verbose = value != 0;
    } else {
      std::fprintf(stderr, "protocol_fuzz: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }
  return Run(seed, iters, deadline_ms, verbose);
}

}  // namespace
}  // namespace costsense::fuzz

int main(int argc, char** argv) { return costsense::fuzz::Main(argc, argv); }
