#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "internal.h"
#include "lint.h"

/// R7: include-graph layering. Two properties, both over `src/`-classified
/// files only (bench/tests/tools may include whatever they test):
///
///  1. Module edges. Every quoted `#include "module/file.h"` that crosses
///     a module boundary must be sanctioned: either listed in the
///     including module's [layers] entry, covered by a documented
///     [[exception]], or suppressed on the include line with
///     allow(R7, ...). A file's module is the longest directory prefix
///     the manifest declares — "runtime/sink/stages.h" belongs to the
///     nested module "runtime/sink" when that entry exists, to "runtime"
///     otherwise — so a subdirectory can be carved into its own layer
///     without renaming files. Includes of bench/tests/tools from library
///     code and includes of modules the manifest has never heard of are
///     findings.
///
///  2. File-level cycles. The include graph over the scanned src files must
///     be acyclic. Cycles are reported once per strongly connected
///     component and are NOT suppressible and NOT exemptable: a manifest
///     exception whitelists a module-level back-edge, but a concrete
///     file-level cycle is always a defect.
namespace costsense::lint {
namespace {

using internal::ClassifyPath;
using internal::IsSuppressed;
using internal::PathClass;
using internal::SplitPath;
using internal::Suppressions;

struct SrcNode {
  const SourceFile* file = nullptr;
  std::string rel;     // module-relative path, e.g. "core/oracle.h"
  std::string module;  // longest manifest-declared prefix of rel
  LexedFile lexed;
  Suppressions sup;
};

/// Resolves a split path to its module: the longest directory prefix the
/// manifest declares ("runtime/sink/stages.h" is module "runtime/sink"
/// when that entry exists, module "runtime" otherwise). Falls back to the
/// first component when no prefix is declared, so undeclared modules
/// still get named in findings.
std::string ModuleFor(const std::vector<std::string>& parts,
                      const LayerManifest& manifest) {
  std::string prefix;
  std::string best;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {  // last part is the file
    if (!prefix.empty()) prefix += '/';
    prefix += parts[i];
    if (manifest.allowed.count(prefix)) best = prefix;
  }
  return best.empty() ? parts[0] : best;
}

std::string JoinSorted(const std::set<std::string>& items) {
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out;
}

bool ExceptionCovers(const LayerException& exc, const SrcNode& node,
                     const std::string& target_module,
                     const std::string& include_path) {
  const bool from_ok = exc.from == node.module || exc.from == node.rel;
  const bool to_ok = exc.to == target_module || exc.to == include_path;
  return from_ok && to_ok;
}

}  // namespace

namespace internal {

/// Kosaraju SCC; component ids come out in reverse-topological discovery
/// order, which is stable for a given adjacency list.
std::vector<int> StronglyConnectedComponents(
    const std::vector<std::vector<int>>& adj, int* component_count) {
  const int n = static_cast<int>(adj.size());
  std::vector<std::vector<int>> radj(n);
  for (int u = 0; u < n; ++u) {
    for (int v : adj[u]) radj[v].push_back(u);
  }
  std::vector<int> order;
  std::vector<char> seen(static_cast<size_t>(n), 0);
  for (int start = 0; start < n; ++start) {
    if (seen[static_cast<size_t>(start)]) continue;
    std::vector<std::pair<int, size_t>> stack = {{start, 0}};
    seen[static_cast<size_t>(start)] = 1;
    while (!stack.empty()) {
      const int u = stack.back().first;
      const size_t next = stack.back().second;
      if (next >= adj[static_cast<size_t>(u)].size()) {
        order.push_back(u);
        stack.pop_back();
        continue;
      }
      stack.back().second = next + 1;
      const int v = adj[static_cast<size_t>(u)][next];
      if (!seen[static_cast<size_t>(v)]) {
        seen[static_cast<size_t>(v)] = 1;
        stack.push_back({v, 0});
      }
    }
  }
  std::vector<int> comp(static_cast<size_t>(n), -1);
  int c = 0;
  for (int idx = n - 1; idx >= 0; --idx) {
    const int start = order[static_cast<size_t>(idx)];
    if (comp[static_cast<size_t>(start)] != -1) continue;
    std::vector<int> stack = {start};
    comp[static_cast<size_t>(start)] = c;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (int v : radj[static_cast<size_t>(u)]) {
        if (comp[static_cast<size_t>(v)] == -1) {
          comp[static_cast<size_t>(v)] = c;
          stack.push_back(v);
        }
      }
    }
    ++c;
  }
  *component_count = c;
  return comp;
}

}  // namespace internal

namespace {

/// Shortest path u -> target inside one component (BFS); used to render a
/// concrete cycle chain in the finding message.
std::vector<int> PathWithin(const std::vector<std::vector<int>>& adj,
                            const std::vector<int>& comp, int u, int target) {
  std::vector<int> prev(adj.size(), -1);
  std::vector<int> queue = {u};
  std::vector<char> seen(adj.size(), 0);
  seen[static_cast<size_t>(u)] = 1;
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    const int cur = queue[qi];
    for (int v : adj[static_cast<size_t>(cur)]) {
      if (comp[static_cast<size_t>(v)] != comp[static_cast<size_t>(u)]) {
        continue;
      }
      if (seen[static_cast<size_t>(v)]) continue;
      seen[static_cast<size_t>(v)] = 1;
      prev[static_cast<size_t>(v)] = cur;
      if (v == target) {
        std::vector<int> path = {v};
        int p = cur;
        while (p != -1 && p != u) {
          path.push_back(p);
          p = prev[static_cast<size_t>(p)];
        }
        path.push_back(u);
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(v);
    }
  }
  return {};
}

}  // namespace

std::vector<Finding> CheckIncludeGraph(const std::vector<SourceFile>& files,
                                       const LayerManifest& manifest) {
  std::vector<Finding> findings;

  std::vector<SrcNode> nodes;
  for (const SourceFile& file : files) {
    const PathClass pc = ClassifyPath(file.path);
    if (pc.root != PathClass::kSrc) continue;
    const std::vector<std::string> parts = SplitPath(pc.rel);
    if (parts.size() < 2) continue;  // no module directory
    SrcNode node;
    node.file = &file;
    node.rel = pc.rel;
    node.module = ModuleFor(parts, manifest);
    node.lexed = Lex(file.content);
    node.sup = internal::CollectSuppressions(file.path, node.lexed.comments);
    nodes.push_back(std::move(node));
  }

  std::map<std::string, int> index_of_rel;
  for (size_t i = 0; i < nodes.size(); ++i) {
    index_of_rel[nodes[i].rel] = static_cast<int>(i);
  }

  // --- Property 1: module edges vs. the manifest -------------------------
  std::vector<std::vector<int>> adj(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    SrcNode& node = nodes[i];
    // node.sup.bad is NOT re-reported here; the per-file pass owns SUP.
    for (const IncludeDirective& inc : node.lexed.includes) {
      if (inc.angled) continue;  // system headers are outside the layer map
      const std::vector<std::string> inc_parts = SplitPath(inc.path);
      if (inc_parts.size() < 2) continue;  // same-directory include
      const std::string target = ModuleFor(inc_parts, manifest);

      // File-level edge for the cycle check, whatever the manifest says.
      const auto rel_it = index_of_rel.find(inc.path);
      if (rel_it != index_of_rel.end()) {
        adj[i].push_back(rel_it->second);
      }

      if (target == node.module) continue;  // intra-module: always allowed

      if (inc_parts[0] == "bench" || inc_parts[0] == "tests" ||
          inc_parts[0] == "tools") {
        findings.push_back(
            {node.file->path, inc.line, inc.col, Rule::kLayering,
             "library code includes \"" + inc.path + "\" (R7): src/" +
                 node.module +
                 " must never depend on bench/, tests/ or tools/; invert "
                 "the dependency or move the shared piece into src/",
             ""});
        continue;
      }
      if (!manifest.allowed.count(target)) {
        findings.push_back(
            {node.file->path, inc.line, inc.col, Rule::kLayering,
             "include of \"" + inc.path + "\" names module '" + target +
                 "' which layers.toml does not declare (R7); add the module "
                 "to the [layers] table or fix the include path",
             ""});
        continue;
      }
      const auto allowed_it = manifest.allowed.find(node.module);
      const bool module_declared = allowed_it != manifest.allowed.end();
      const bool edge_allowed =
          module_declared && allowed_it->second.count(target) > 0;
      if (!module_declared) {
        findings.push_back(
            {node.file->path, inc.line, inc.col, Rule::kLayering,
             "module '" + node.module +
                 "' is not declared in layers.toml (R7); every src/ module "
                 "must have a [layers] entry naming what it may include",
             ""});
        continue;
      }
      if (edge_allowed) continue;
      bool excepted = false;
      for (const LayerException& exc : manifest.exceptions) {
        if (ExceptionCovers(exc, node, target, inc.path)) {
          excepted = true;
          break;
        }
      }
      if (excepted) continue;
      if (IsSuppressed(node.sup, Rule::kLayering, inc.line)) continue;
      findings.push_back(
          {node.file->path, inc.line, inc.col, Rule::kLayering,
           "include of \"" + inc.path + "\" is a layer violation (R7): '" +
               node.module + "' may only include [" +
               JoinSorted(allowed_it->second) +
               "]; add the edge to tools/lint/layers.toml (or a documented "
               "[[exception]] if the inversion is load-bearing) or break "
               "the dependency",
           ""});
    }
  }

  // --- Property 2: file-level include cycles -----------------------------
  int component_count = 0;
  const std::vector<int> comp =
      internal::StronglyConnectedComponents(adj, &component_count);
  std::vector<std::vector<int>> members(
      static_cast<size_t>(component_count));
  for (size_t i = 0; i < nodes.size(); ++i) {
    members[static_cast<size_t>(comp[i])].push_back(static_cast<int>(i));
  }
  for (std::vector<int>& scc : members) {
    bool self_loop = false;
    if (scc.size() == 1) {
      const int u = scc[0];
      for (int v : adj[static_cast<size_t>(u)]) self_loop |= (v == u);
      if (!self_loop) continue;
    }
    // Representative: lexicographically smallest member path.
    std::sort(scc.begin(), scc.end(), [&](int a, int b) {
      return nodes[static_cast<size_t>(a)].rel <
             nodes[static_cast<size_t>(b)].rel;
    });
    const int rep = scc[0];
    const SrcNode& rep_node = nodes[static_cast<size_t>(rep)];

    // Render a concrete chain rep -> ... -> rep.
    std::string chain = rep_node.rel;
    int first_hop = rep;
    if (self_loop) {
      chain += " -> " + rep_node.rel;
    } else {
      for (int v : adj[static_cast<size_t>(rep)]) {
        if (comp[static_cast<size_t>(v)] != comp[static_cast<size_t>(rep)]) {
          continue;
        }
        const std::vector<int> path = PathWithin(adj, comp, v, rep);
        if (path.empty()) continue;
        first_hop = v;
        for (int p : path) {
          chain += " -> " + nodes[static_cast<size_t>(p)].rel;
        }
        break;
      }
    }
    // Anchor at the rep's include directive that enters the cycle.
    int line = 1;
    int col = 1;
    for (const IncludeDirective& inc : rep_node.lexed.includes) {
      if (inc.path == nodes[static_cast<size_t>(first_hop)].rel) {
        line = inc.line;
        col = inc.col;
        break;
      }
    }
    findings.push_back(
        {rep_node.file->path, line, col, Rule::kLayering,
         "include cycle (R7): " + chain +
             "; cycles are never suppressible — break the knot with a "
             "forward declaration or by extracting the shared interface",
         ""});
  }

  return findings;
}

}  // namespace costsense::lint
