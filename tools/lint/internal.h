#ifndef COSTSENSE_TOOLS_LINT_INTERNAL_H_
#define COSTSENSE_TOOLS_LINT_INTERNAL_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint.h"

/// Shared plumbing for the rule passes: path classification and the
/// suppression-directive parser. Implemented in rules.cc; the whole-program
/// passes (include_graph.cc, locks.cc) reuse it so `allow(R7, ...)` /
/// `allow(R8, ...)` behave exactly like the per-file rules' suppressions.
namespace costsense::lint::internal {

/// Which scanned tree a file belongs to. Classification keys off the LAST
/// `src`/`bench`/`tests` path component, so fixture corpora that mirror the
/// tree layout under `tests/tools/lint/corpus/src/...` classify as `src`.
struct PathClass {
  enum Root { kSrc, kBench, kTests, kOther } root = kOther;
  std::string rel;  // path below the root component, '/'-separated
};

PathClass ClassifyPath(const std::string& path);

std::vector<std::string> SplitPath(std::string_view path);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
std::string_view Trim(std::string_view s);

struct Suppressions {
  // line -> rules allowed on that line (by a *valid* suppression).
  std::map<int, std::set<Rule>> by_line;
  std::vector<Finding> bad;  // malformed / justification-free directives
};

/// Parses `allow(<rule>, <justification>)` directives out of the file's
/// comments. A trailing comment covers its own line; a standalone comment
/// covers itself and the following line.
Suppressions CollectSuppressions(const std::string& file,
                                 const std::vector<Comment>& comments);

bool IsSuppressed(const Suppressions& sup, Rule rule, int line);

/// Kosaraju SCC over a directed graph given as adjacency lists; returns
/// the component id per node and the component count. Shared by the R7
/// include-cycle check and the R8 lock-order-cycle check. Implemented in
/// include_graph.cc.
std::vector<int> StronglyConnectedComponents(
    const std::vector<std::vector<int>>& adj, int* component_count);

}  // namespace costsense::lint::internal

#endif  // COSTSENSE_TOOLS_LINT_INTERNAL_H_
