#include <algorithm>
#include <cctype>

#include "lint.h"

namespace costsense::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

LexedFile Lex(std::string_view source) {
  LexedFile out;
  const size_t n = source.size();
  size_t i = 0;
  int line = 1;
  // Offset of the current line's first character; columns are 1-based
  // distances from it.
  size_t line_start = 0;
  // Tracks whether any token was emitted on the current line, so comments
  // can be classified as trailing (code before them) or standalone.
  int last_token_line = 0;

  auto col_of = [&](size_t pos) {
    return static_cast<int>(pos - line_start) + 1;
  };

  auto push_punct = [&](std::string text, int col) {
    last_token_line = line;
    out.tokens.push_back({Token::Kind::kPunct, std::move(text), line, col});
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Include directive capture: `#include "path"` / `#include <path>`.
    // The directive is recorded on the side and lexing then proceeds
    // normally (the quoted path is skipped as a string literal; an angled
    // path still lexes as tokens, which R6's header detection relies on).
    if (c == '#') {
      size_t j = i + 1;
      while (j < n && (source[j] == ' ' || source[j] == '\t')) ++j;
      size_t k = j;
      while (k < n && IsIdentChar(source[k])) ++k;
      if (source.substr(j, k - j) == "include") {
        while (k < n && (source[k] == ' ' || source[k] == '\t')) ++k;
        if (k < n && (source[k] == '"' || source[k] == '<')) {
          const char close = source[k] == '"' ? '"' : '>';
          size_t end = k + 1;
          while (end < n && source[end] != close && source[end] != '\n') ++end;
          if (end < n && source[end] == close) {
            out.includes.push_back(
                {std::string(source.substr(k + 1, end - (k + 1))), line,
                 col_of(i), close == '>'});
          }
        }
      }
    }

    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const int start_line = line;
      const int start_col = col_of(i);
      size_t j = i + 2;
      while (j < n && source[j] == '/') ++j;  // normalize /// doc comments
      size_t end = j;
      while (end < n && source[end] != '\n') ++end;
      out.comments.push_back({start_line, start_col,
                              last_token_line == start_line,
                              std::string(source.substr(j, end - j))});
      i = end;
      continue;
    }

    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const int start_line = line;
      const int start_col = col_of(i);
      size_t j = i + 2;
      while (j + 1 < n && !(source[j] == '*' && source[j + 1] == '/')) {
        if (source[j] == '\n') {
          ++line;
          line_start = j + 1;
        }
        ++j;
      }
      out.comments.push_back({start_line, start_col,
                              last_token_line == start_line,
                              std::string(source.substr(i + 2, j - (i + 2)))});
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }

    // Raw string literal: R"delim( ... )delim" (with optional encoding
    // prefix, e.g. u8R"(...)"). Must be checked before plain identifiers.
    if ((c == 'R' || c == 'u' || c == 'U' || c == 'L')) {
      size_t j = i;
      if (source[j] == 'u' && j + 1 < n && source[j + 1] == '8') j += 2;
      else if (source[j] == 'u' || source[j] == 'U' || source[j] == 'L') j += 1;
      if (j < n && source[j] == 'R' && j + 1 < n && source[j + 1] == '"') {
        size_t k = j + 2;
        std::string delim;
        while (k < n && source[k] != '(') delim.push_back(source[k++]);
        const std::string close = ")" + delim + "\"";
        size_t end = source.find(close, k);
        if (end == std::string_view::npos) end = n - close.size();
        for (size_t p = i; p < end + close.size() && p < n; ++p) {
          if (source[p] == '\n') {
            ++line;
            line_start = p + 1;
          }
        }
        i = std::min(n, end + close.size());
        continue;
      }
    }

    // String / char literal (contents stripped; escapes honored).
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < n && source[j] != quote) {
        if (source[j] == '\\' && j + 1 < n) ++j;
        if (source[j] == '\n') {  // unterminated-literal safety
          ++line;
          line_start = j + 1;
        }
        ++j;
      }
      i = (j < n) ? j + 1 : n;
      continue;
    }

    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(source[j])) ++j;
      last_token_line = line;
      out.tokens.push_back({Token::Kind::kIdentifier,
                            std::string(source.substr(i, j - i)), line,
                            col_of(i)});
      i = j;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;
      // Accept hex/exponent/digit-separator characters; a following quote
      // is a C++14 digit separator, not a char literal.
      while (j < n && (IsIdentChar(source[j]) || source[j] == '.' ||
                       source[j] == '\'' ||
                       ((source[j] == '+' || source[j] == '-') &&
                        (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                         source[j - 1] == 'p' || source[j - 1] == 'P')))) {
        ++j;
      }
      last_token_line = line;
      out.tokens.push_back({Token::Kind::kNumber,
                            std::string(source.substr(i, j - i)), line,
                            col_of(i)});
      i = j;
      continue;
    }

    // `::` is one token so the rule engine can tell qualification
    // (`costsense::Status`) apart from labels and ctor-init colons.
    if (c == ':' && i + 1 < n && source[i + 1] == ':') {
      push_punct("::", col_of(i));
      i += 2;
      continue;
    }
    // `->` is one token so the lock-discipline pass can walk member-access
    // chains (`transport_->Close()`) without confusing `-` `>` with a
    // comparison against a negated value.
    if (c == '-' && i + 1 < n && source[i + 1] == '>' &&
        (i + 2 >= n || source[i + 2] != '*')) {
      push_punct("->", col_of(i));
      i += 2;
      continue;
    }

    push_punct(std::string(1, c), col_of(i));
    ++i;
  }
  return out;
}

}  // namespace costsense::lint
