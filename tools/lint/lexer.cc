#include "lint.h"

#include <cctype>

namespace costsense::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

LexedFile Lex(std::string_view source) {
  LexedFile out;
  const size_t n = source.size();
  size_t i = 0;
  int line = 1;
  // Tracks whether any token was emitted on the current line, so comments
  // can be classified as trailing (code before them) or standalone.
  int last_token_line = 0;

  auto push_punct = [&](std::string text) {
    last_token_line = line;
    out.tokens.push_back({Token::Kind::kPunct, std::move(text), line});
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const int start_line = line;
      size_t j = i + 2;
      while (j < n && source[j] == '/') ++j;  // normalize /// doc comments
      size_t end = j;
      while (end < n && source[end] != '\n') ++end;
      out.comments.push_back({start_line, last_token_line == start_line,
                              std::string(source.substr(j, end - j))});
      i = end;
      continue;
    }

    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const int start_line = line;
      size_t j = i + 2;
      while (j + 1 < n && !(source[j] == '*' && source[j + 1] == '/')) {
        if (source[j] == '\n') ++line;
        ++j;
      }
      out.comments.push_back({start_line, last_token_line == start_line,
                              std::string(source.substr(i + 2, j - (i + 2)))});
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }

    // Raw string literal: R"delim( ... )delim" (with optional encoding
    // prefix, e.g. u8R"(...)"). Must be checked before plain identifiers.
    if ((c == 'R' || c == 'u' || c == 'U' || c == 'L')) {
      size_t j = i;
      if (source[j] == 'u' && j + 1 < n && source[j + 1] == '8') j += 2;
      else if (source[j] == 'u' || source[j] == 'U' || source[j] == 'L') j += 1;
      if (j < n && source[j] == 'R' && j + 1 < n && source[j + 1] == '"') {
        size_t k = j + 2;
        std::string delim;
        while (k < n && source[k] != '(') delim.push_back(source[k++]);
        const std::string close = ")" + delim + "\"";
        size_t end = source.find(close, k);
        if (end == std::string_view::npos) end = n - close.size();
        for (size_t p = i; p < end + close.size() && p < n; ++p) {
          if (source[p] == '\n') ++line;
        }
        i = std::min(n, end + close.size());
        continue;
      }
    }

    // String / char literal (contents stripped; escapes honored).
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < n && source[j] != quote) {
        if (source[j] == '\\' && j + 1 < n) ++j;
        if (source[j] == '\n') ++line;  // unterminated-literal safety
        ++j;
      }
      i = (j < n) ? j + 1 : n;
      continue;
    }

    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(source[j])) ++j;
      last_token_line = line;
      out.tokens.push_back({Token::Kind::kIdentifier,
                            std::string(source.substr(i, j - i)), line});
      i = j;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;
      // Accept hex/exponent/digit-separator characters; a following quote
      // is a C++14 digit separator, not a char literal.
      while (j < n && (IsIdentChar(source[j]) || source[j] == '.' ||
                       source[j] == '\'' ||
                       ((source[j] == '+' || source[j] == '-') &&
                        (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                         source[j - 1] == 'p' || source[j - 1] == 'P')))) {
        ++j;
      }
      last_token_line = line;
      out.tokens.push_back({Token::Kind::kNumber,
                            std::string(source.substr(i, j - i)), line});
      i = j;
      continue;
    }

    // `::` is one token so the rule engine can tell qualification
    // (`costsense::Status`) apart from labels and ctor-init colons.
    if (c == ':' && i + 1 < n && source[i + 1] == ':') {
      push_punct("::");
      i += 2;
      continue;
    }

    push_punct(std::string(1, c));
    ++i;
  }
  return out;
}

}  // namespace costsense::lint
