#ifndef COSTSENSE_TOOLS_LINT_LINT_H_
#define COSTSENSE_TOOLS_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

/// costsense-lint — an in-repo determinism & status-discipline analyzer.
///
/// The byte-identical-stdout invariants proven by the runtime, kernel and
/// resilience suites only hold if library code follows a handful of coding
/// rules (no ambient randomness or wall-clock reads, no unordered-container
/// iteration feeding output, no silently dropped Status). This tool turns
/// those rules from reviewer folklore into a machine-checked property:
///
///   R1  nondeterminism sources (`rand`, `std::random_device`, `mt19937`,
///       `system_clock`, `steady_clock`, `time`, ...) are banned outside
///       `src/common/rng.*` (randomness) and
///       `src/runtime/resilience/clock.*` (clock reads).
///   R2  `std::unordered_map`/`unordered_set` are forbidden in `src/core`
///       and `src/exp` (suppressions are NOT honored there) and flagged
///       everywhere else unless suppressed with a justification.
///   R3  `std::cout`/`printf`-family raw output is banned in library code
///       (`src/**` except `src/exp`); render paths live in `src/exp`,
///       `bench/`, tests and the CHECK macros (which use fprintf(stderr)).
///       In `src/serve` the ban is absolute (suppressions are NOT
///       honored): server code speaks only through the wire protocol and
///       the artifact sinks.
///   R4  every `Status`/`Result<T>`-returning declaration in a header must
///       carry `[[nodiscard]]`.
///   R5  `getenv`/`secure_getenv` are banned outside `src/engine/config.*`:
///       `engine::EngineConfig::FromEnv` is the single place the process
///       environment is read, so every knob is typed, validated and visible
///       in one config struct.
///   R6  raw SIMD intrinsics (`_mm*`, `__m128/__m256/__m512`, the
///       `*intrin.h` headers) are banned outside `src/linalg/simd*`: the
///       dispatched kernels in linalg/simd_kernels.h are the one place
///       per-ISA code lives, so every other file stays portable and the
///       bit-compatibility contracts are auditable in one translation
///       unit.
///   R7  the `#include` graph over `src/` must respect the layer manifest
///       (`tools/lint/layers.toml`): a module may only include modules its
///       manifest entry names, undeclared modules and includes of
///       bench/tests/tools from library code are findings, and file-level
///       include cycles are always findings (no suppression, no manifest
///       exception — a cycle is a defect, not a policy choice).
///   R8  lock discipline, computed on a whole-program model: per-function
///       mutex acquisition sequences (std::mutex / std::shared_mutex
///       members; lock_guard / unique_lock / shared_lock / scoped_lock
///       sites) feed a global lock-order graph. Inconsistent acquisition
///       orders (cycles — potential deadlocks) and locks held across
///       oracle calls (Optimize/TryOptimize) or transport calls
///       (SendFrame/RecvFrame/Close) are findings.
///
/// Per-line suppressions:
///
///   code();  // costsense-lint: allow(R2, "point lookups only, never iterated")
///
/// A trailing suppression covers its own line; a comment alone on a line
/// covers itself and the next line. The justification string is mandatory:
/// a bare `allow(R2)` is itself a finding (SUP).
namespace costsense::lint {

// ---------------------------------------------------------------------------
// Lexer (comment/string-aware; shared by the rule engine and its tests)
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdentifier, kNumber, kPunct };
  Kind kind;
  std::string text;
  int line;  // 1-based
  int col;   // 1-based column of the token's first character
};

struct Comment {
  int line;       // 1-based line the comment starts on
  int col;        // 1-based column of the leading `//` or `/*`
  bool trailing;  // true when code precedes the comment on its line
  std::string text;
};

/// One `#include` directive, captured verbatim for the include-graph pass.
/// Quoted includes carry `angled == false`; system headers `angled == true`.
struct IncludeDirective {
  std::string path;  // the text between the quotes / angle brackets
  int line;          // 1-based
  int col;           // 1-based column of the `#`
  bool angled;
};

struct LexedFile {
  std::vector<Token> tokens;      // comments/strings/chars stripped
  std::vector<Comment> comments;  // kept separately for suppression parsing
  std::vector<IncludeDirective> includes;
};

/// Tokenizes C++ source. String literals (including raw strings), character
/// literals and comments never produce tokens, so a banned name inside a
/// string or comment is not a finding. Include directives are captured on
/// the side (their quoted paths would otherwise vanish with the strings).
LexedFile Lex(std::string_view source);

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

enum class Rule {
  kNondeterminism,      // R1
  kUnorderedContainer,  // R2
  kRawOutput,           // R3
  kNodiscard,           // R4
  kGetenv,              // R5
  kRawIntrinsics,       // R6
  kLayering,            // R7: include-graph vs. layers.toml
  kLockDiscipline,      // R8: lock-order graph & locks held across calls
  kBadSuppression,      // SUP: malformed / justification-free allow()
};

/// "R1".."R8" or "SUP".
const char* RuleId(Rule rule);

/// Parses "R1".."R8" or the semantic names ("nondeterminism", "unordered",
/// "raw-output", "nodiscard", "getenv", "intrinsics", "layering", "locks");
/// returns false for anything else.
bool ParseRuleName(std::string_view name, Rule* out);

struct Finding {
  std::string file;
  int line;
  int col;  // 1-based; 1 when the finding anchors to a whole line
  Rule rule;
  std::string message;
  /// Stable identity for CI baselining: FNV-1a over (file, rule, message,
  /// per-file ordinal) — deliberately excludes line/col so findings survive
  /// unrelated edits. Empty until AssignFingerprints() runs.
  std::string fingerprint;

  bool operator==(const Finding& other) const = default;
};

/// Analyzes one file with the per-file rules (R1–R6, SUP). `virtual_path`
/// decides rule scoping (the path component layout `src/...`, `bench/...`,
/// `tests/...` is what matters, so tests can hand in synthetic paths for
/// fixture content).
std::vector<Finding> AnalyzeSource(const std::string& virtual_path,
                                   std::string_view content);

// ---------------------------------------------------------------------------
// Whole-program passes (R7, R8)
// ---------------------------------------------------------------------------

/// One file of the repository model handed to the whole-program passes.
struct SourceFile {
  std::string path;  // virtual path; same scoping semantics as AnalyzeSource
  std::string content;
};

/// A manifest-sanctioned back-edge: `from` (module, or module-relative file
/// like "runtime/oracle_cache.h") may include `to` (module or file) despite
/// the layer order. `why` is mandatory — an exception is a documented,
/// load-bearing inversion, not an escape hatch.
struct LayerException {
  std::string from;
  std::string to;
  std::string why;
};

/// Parsed layers.toml: modules in bottom→top declaration order, the
/// allowed-include set per module, and the documented exceptions.
struct LayerManifest {
  std::vector<std::string> order;
  std::map<std::string, std::set<std::string>> allowed;
  std::vector<LayerException> exceptions;
};

/// Parses the layers.toml subset (a `[layers]` table of `module = [list]`
/// entries plus `[[exception]]` tables with from/to/why string keys) and
/// validates it: every referenced module must be declared, the allowed
/// graph must itself be acyclic, and exceptions must be complete. Returns
/// false with a diagnostic in `*error` on any violation.
bool ParseLayerManifest(std::string_view text, LayerManifest* out,
                        std::string* error);

/// R7: checks every `#include` in `src/`-classified files against the
/// manifest, and rejects file-level include cycles.
std::vector<Finding> CheckIncludeGraph(const std::vector<SourceFile>& files,
                                       const LayerManifest& manifest);

/// R8: builds the whole-program lock model over `src/`-classified files and
/// flags lock-order cycles and locks held across oracle/transport calls.
std::vector<Finding> CheckLockDiscipline(const std::vector<SourceFile>& files);

/// Runs the per-file rules over every file, then the whole-program passes
/// (R7 only when a manifest is supplied). This is what the CLI executes.
std::vector<Finding> AnalyzeRepo(const std::vector<SourceFile>& files,
                                 const LayerManifest* manifest);

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Sorts findings by (file, line, col, rule, message) and fills in each
/// finding's stable fingerprint (see Finding::fingerprint).
void AssignFingerprints(std::vector<Finding>* findings);

/// Stable text rendering: one `path:line:col: [Rx] message` line per
/// finding, sorted by (path, line, col, rule, message).
std::string FormatFindings(std::vector<Finding> findings);

/// Machine-readable rendering (schema documented in DESIGN.md §5d):
///   {"version": 1, "count": N, "findings": [
///     {"file": ..., "line": N, "col": N, "rule": "Rx",
///      "fingerprint": "...", "message": ...}, ...]}
/// Findings are sorted as in FormatFindings; fingerprints are assigned.
std::string FormatFindingsJson(std::vector<Finding> findings);

}  // namespace costsense::lint

#endif  // COSTSENSE_TOOLS_LINT_LINT_H_
