#ifndef COSTSENSE_TOOLS_LINT_LINT_H_
#define COSTSENSE_TOOLS_LINT_LINT_H_

#include <string>
#include <string_view>
#include <vector>

/// costsense-lint: an in-repo determinism & status-discipline analyzer.
///
/// The byte-identical-stdout invariants proven by the runtime, kernel and
/// resilience suites only hold if library code follows a handful of coding
/// rules (no ambient randomness or wall-clock reads, no unordered-container
/// iteration feeding output, no silently dropped Status). This tool turns
/// those rules from reviewer folklore into a machine-checked property:
///
///   R1  nondeterminism sources (`rand`, `std::random_device`, `mt19937`,
///       `system_clock`, `steady_clock`, `time`, ...) are banned outside
///       `src/common/rng.*` (randomness) and
///       `src/runtime/resilience/clock.*` (clock reads).
///   R2  `std::unordered_map`/`unordered_set` are forbidden in `src/core`
///       and `src/exp` (suppressions are NOT honored there) and flagged
///       everywhere else unless suppressed with a justification.
///   R3  `std::cout`/`printf`-family raw output is banned in library code
///       (`src/**` except `src/exp`); render paths live in `src/exp`,
///       `bench/`, tests and the CHECK macros (which use fprintf(stderr)).
///       In `src/serve` the ban is absolute (suppressions are NOT
///       honored): server code speaks only through the wire protocol and
///       the artifact sinks.
///   R4  every `Status`/`Result<T>`-returning declaration in a header must
///       carry `[[nodiscard]]`.
///   R5  `getenv`/`secure_getenv` are banned outside `src/engine/config.*`:
///       `engine::EngineConfig::FromEnv` is the single place the process
///       environment is read, so every knob is typed, validated and visible
///       in one config struct.
///   R6  raw SIMD intrinsics (`_mm*`, `__m128/__m256/__m512`, the
///       `*intrin.h` headers) are banned outside `src/linalg/simd*`: the
///       dispatched kernels in linalg/simd_kernels.h are the one place
///       per-ISA code lives, so every other file stays portable and the
///       bit-compatibility contracts are auditable in one translation
///       unit.
///
/// Per-line suppressions:
///
///   code();  // costsense-lint: allow(R2, "point lookups only, never iterated")
///
/// A trailing suppression covers its own line; a comment alone on a line
/// covers itself and the next line. The justification string is mandatory:
/// a bare `allow(R2)` is itself a finding (SUP).
namespace costsense::lint {

// ---------------------------------------------------------------------------
// Lexer (comment/string-aware; shared by the rule engine and its tests)
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdentifier, kNumber, kPunct };
  Kind kind;
  std::string text;
  int line;  // 1-based
};

struct Comment {
  int line;       // 1-based line the comment starts on
  bool trailing;  // true when code precedes the comment on its line
  std::string text;
};

struct LexedFile {
  std::vector<Token> tokens;      // comments/strings/chars stripped
  std::vector<Comment> comments;  // kept separately for suppression parsing
};

/// Tokenizes C++ source. String literals (including raw strings), character
/// literals and comments never produce tokens, so a banned name inside a
/// string or comment is not a finding.
LexedFile Lex(std::string_view source);

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

enum class Rule {
  kNondeterminism,      // R1
  kUnorderedContainer,  // R2
  kRawOutput,           // R3
  kNodiscard,           // R4
  kGetenv,              // R5
  kRawIntrinsics,       // R6
  kBadSuppression,      // SUP: malformed / justification-free allow()
};

/// "R1".."R6" or "SUP".
const char* RuleId(Rule rule);

/// Parses "R1".."R6" or the semantic names ("nondeterminism", "unordered",
/// "raw-output", "nodiscard", "getenv", "intrinsics"); returns false for
/// anything else.
bool ParseRuleName(std::string_view name, Rule* out);

struct Finding {
  std::string file;
  int line;
  Rule rule;
  std::string message;

  bool operator==(const Finding& other) const = default;
};

/// Analyzes one file. `virtual_path` decides rule scoping (the path
/// component layout `src/...`, `bench/...`, `tests/...` is what matters,
/// so tests can hand in synthetic paths for fixture content).
std::vector<Finding> AnalyzeSource(const std::string& virtual_path,
                                   std::string_view content);

/// Stable rendering: one `path:line: [Rx] message` line per finding,
/// sorted by (path, line, rule).
std::string FormatFindings(std::vector<Finding> findings);

}  // namespace costsense::lint

#endif  // COSTSENSE_TOOLS_LINT_LINT_H_
