#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "internal.h"
#include "lint.h"

/// R8: lock discipline over a whole-program model.
///
/// Extraction (per src file, token-level — no AST): classes with their
/// mutex members (any member whose declared type mentions `mutex` /
/// `shared_mutex`), member/local/param types, base classes, and method
/// return types; functions with their ordered event streams — guard
/// acquisitions (lock_guard / unique_lock / shared_lock / scoped_lock,
/// scope-tracked so a guard releases when its block closes or `.unlock()`
/// runs; a multi-argument scoped_lock is one atomic acquisition and
/// produces no intra-group edges) and call sites with the receiver chain
/// and the set of locks held at that point.
///
/// Analysis (global): receiver chains resolve through the type model
/// (locals, params, members, method return types, make_unique/make_shared
/// template arguments, virtual dispatch through base/derived unions); a
/// fixpoint closes each function's acquired-lock set and its
/// reaches-oracle/transport bit over the call graph. Lock identities
/// normalize to `Class::member` when the expression types out (so
/// `other.mu_` in a move constructor and a bare `mu_` unify), falling back
/// to an enclosing-class-scoped expression id that can split nodes but
/// never wrongly merges them.
///
/// Findings: (a) lock-order cycles — reported once per strongly connected
/// component of the global acquired-before graph, suppressed only when an
/// allow(R8, ...) sits on one of the cycle's acquisition/call sites; (b) a
/// lock held across a call that is or reaches an oracle call
/// (Optimize/TryOptimize) or a transport call (SendFrame/RecvFrame, or
/// Close on a FrameTransport-derived receiver); (c) re-acquiring an
/// expression already held (guaranteed self-deadlock on std::mutex).
/// Unresolvable chains contribute nothing — the pass is deliberately
/// under-approximate rather than noisy.
namespace costsense::lint {
namespace {

using internal::ClassifyPath;
using internal::IsSuppressed;
using internal::PathClass;
using internal::Suppressions;

constexpr size_t kNpos = static_cast<size_t>(-1);

bool IsIdent(const Token& t) { return t.kind == Token::Kind::kIdentifier; }

const std::set<std::string>& GuardTypes() {
  static const std::set<std::string> kSet = {
      "lock_guard",
      "unique_lock",
      "shared_lock",
      "scoped_lock",
  };
  return kSet;
}

const std::set<std::string>& LockTagArgs() {
  static const std::set<std::string> kSet = {
      "defer_lock",
      "try_to_lock",
      "adopt_lock",
  };
  return kSet;
}

/// Identifiers that can precede `(` without being a call worth recording.
const std::set<std::string>& NonCalleeKeywords() {
  static const std::set<std::string> kSet = {
      "if",     "for",    "while",   "switch",  "return", "sizeof",
      "catch",  "assert", "alignas", "alignof", "decltype",
  };
  return kSet;
}

/// Statement-leading keywords that can never start a local declaration.
const std::set<std::string>& StmtAbortKeywords() {
  static const std::set<std::string> kSet = {
      "return", "if",   "for",  "while", "switch", "do",    "else",
      "case",   "goto", "new",  "delete", "throw",  "break", "continue",
  };
  return kSet;
}

const std::set<std::string>& TypeSpecifierNoise() {
  static const std::set<std::string> kSet = {
      "const",  "static", "constexpr", "mutable",
      "volatile", "typename", "struct", "inline",
  };
  return kSet;
}

struct RawEvent {
  bool is_acquire = false;
  int line = 0;
  int col = 0;
  // Acquire: normalized lock expressions ("mu_", "other.mu_", "s.mu").
  std::vector<std::string> lock_exprs;
  bool atomic_group = false;
  // Call: callee name ("#ctor:T" marks make_unique/make_shared<T>),
  // receiver chain elements ("x" field, "x()" method), optional static
  // qualifier class (`Cls::f(...)`).
  std::string callee;
  std::string static_cls;
  std::vector<std::string> chain;
  bool chain_ok = true;
  std::string display;
  // Both kinds: lock expressions held just before the event.
  std::vector<std::string> held_exprs;
};

struct RawFunction {
  std::string file;
  std::string cls;  // simple enclosing class name; "" for free functions
  std::string name;
  std::map<std::string, std::vector<std::string>> locals;  // var -> type ids
  std::map<std::string, std::string> range_locals;  // auto var -> range expr
  std::vector<RawEvent> events;
};

struct RawClass {
  std::string name;
  std::vector<std::string> bases;
  std::map<std::string, std::vector<std::string>> member_types;
  std::map<std::string, std::vector<std::string>> method_returns;
  std::set<std::string> mutex_members;
};

// ---------------------------------------------------------------------------
// Per-file extraction
// ---------------------------------------------------------------------------

class FileExtractor {
 public:
  FileExtractor(std::string file, const LexedFile& lexed,
                std::map<std::string, RawClass>* classes,
                std::vector<RawFunction>* functions)
      : file_(std::move(file)),
        toks_(lexed.tokens),
        classes_(classes),
        functions_(functions) {}

  void Run() { ParseNamespaceBody(0, toks_.size()); }

 private:
  /// toks_[i] is `open`; returns the index just past the matching `close`.
  size_t SkipBalanced(size_t i, const char* open, const char* close) const {
    int depth = 0;
    const size_t n = toks_.size();
    for (size_t j = i; j < n; ++j) {
      if (toks_[j].text == open) ++depth;
      if (toks_[j].text == close) {
        --depth;
        if (depth == 0) return j + 1;
      }
    }
    return n;
  }

  /// toks_[i] == "<". Returns the index past the matching ">", or kNpos if
  /// this is a comparison rather than a template argument list.
  size_t SkipTemplateArgs(size_t i) const {
    int depth = 0;
    const size_t n = toks_.size();
    for (size_t j = i; j < n; ++j) {
      const std::string& t = toks_[j].text;
      if (t == "<") ++depth;
      if (t == ">") {
        --depth;
        if (depth == 0) return j + 1;
      }
      if (t == ";" || t == "{" || t == "}") return kNpos;
    }
    return kNpos;
  }

  size_t SkipEnum(size_t i, size_t e) const {
    size_t j = i + 1;
    while (j < e && toks_[j].text != "{" && toks_[j].text != ";") ++j;
    if (j < e && toks_[j].text == "{") j = SkipBalanced(j, "{", "}");
    while (j < e && toks_[j].text != ";") ++j;
    return j < e ? j + 1 : e;
  }

  void ParseNamespaceBody(size_t b, size_t e) {
    size_t i = b;
    while (i < e) {
      const std::string& s = toks_[i].text;
      if (s == "#") {
        // Preprocessor directive: consume the rest of its line so
        // `#include <x>` / `#define ...` never read as declarations.
        const int ln = toks_[i].line;
        ++i;
        while (i < e && toks_[i].line == ln) ++i;
        continue;
      }
      if (s == "namespace") {
        size_t j = i + 1;
        while (j < e && toks_[j].text != "{" && toks_[j].text != ";") ++j;
        if (j < e && toks_[j].text == "{") {
          const size_t after = SkipBalanced(j, "{", "}");
          ParseNamespaceBody(j + 1, after > 0 ? after - 1 : e);
          i = after;
        } else {
          i = j + 1;
        }
        continue;
      }
      if (s == "enum") {
        i = SkipEnum(i, e);
        continue;
      }
      if (s == "class" || s == "struct") {
        i = ParseClassOrSkip(i, e);
        continue;
      }
      if (s == "template") {
        const size_t j = (i + 1 < e && toks_[i + 1].text == "<")
                             ? SkipTemplateArgs(i + 1)
                             : i + 1;
        i = (j == kNpos) ? i + 1 : j;
        continue;
      }
      if (s == "using" || s == "typedef" || s == "static_assert") {
        while (i < e && toks_[i].text != ";") ++i;
        ++i;
        continue;
      }
      if (IsIdent(toks_[i])) {
        size_t next_i = kNpos;
        if (TryParseFunctionFrom(i, e, "", &next_i)) {
          i = next_i;
          continue;
        }
        // Not a function: skip this declaration to keep the scan moving,
        // but never swallow a following type/namespace definition or a
        // preprocessor directive.
        while (i < e && toks_[i].text != ";" && toks_[i].text != "{" &&
               toks_[i].text != "#" && toks_[i].text != "class" &&
               toks_[i].text != "struct" && toks_[i].text != "namespace" &&
               toks_[i].text != "enum") {
          ++i;
        }
        if (i >= e) continue;
        if (toks_[i].text == "{") {
          i = SkipBalanced(i, "{", "}");
        } else if (toks_[i].text == ";") {
          ++i;
        }
        continue;
      }
      ++i;
    }
  }

  size_t ParseClassOrSkip(size_t i, size_t e) {
    size_t j = i + 1;
    std::string name;
    while (j < e) {
      const std::string& t = toks_[j].text;
      if (t == "{" || t == ";" || t == ":") break;
      if (t == "alignas" && j + 1 < e && toks_[j + 1].text == "(") {
        j = SkipBalanced(j + 1, "(", ")");
        continue;
      }
      if (t == "<") {
        const size_t k = SkipTemplateArgs(j);
        j = (k == kNpos) ? j + 1 : k;
        continue;
      }
      if (IsIdent(toks_[j])) name = toks_[j].text;
      ++j;
    }
    if (j >= e) return e;
    if (toks_[j].text == ";") return j + 1;  // forward declaration
    RawClass* cls = nullptr;
    if (!name.empty()) {
      cls = &(*classes_)[name];
      cls->name = name;
    }
    if (toks_[j].text == ":") {
      ++j;
      while (j < e && toks_[j].text != "{" && toks_[j].text != ";") {
        if (IsIdent(toks_[j]) && toks_[j].text != "public" &&
            toks_[j].text != "private" && toks_[j].text != "protected" &&
            toks_[j].text != "virtual") {
          std::string base = toks_[j].text;
          while (j + 2 < e && toks_[j + 1].text == "::" &&
                 IsIdent(toks_[j + 2])) {
            j += 2;
            base = toks_[j].text;
          }
          if (j + 1 < e && toks_[j + 1].text == "<") {
            const size_t k = SkipTemplateArgs(j + 1);
            if (k != kNpos) j = k - 1;
          }
          if (cls != nullptr) cls->bases.push_back(base);
        }
        ++j;
      }
      if (j >= e || toks_[j].text == ";") return j + 1;
    }
    const size_t after = SkipBalanced(j, "{", "}");
    if (!name.empty()) ParseClassBody(name, j + 1, after > 0 ? after - 1 : e);
    size_t k = after;
    while (k < e && toks_[k].text != ";") ++k;
    return k < e ? k + 1 : e;
  }

  void ParseClassBody(const std::string& cls_name, size_t b, size_t e) {
    RawClass& cls = (*classes_)[cls_name];
    cls.name = cls_name;
    size_t i = b;
    while (i < e) {
      const std::string& s = toks_[i].text;
      if (s == "#") {
        const int ln = toks_[i].line;
        ++i;
        while (i < e && toks_[i].line == ln) ++i;
        continue;
      }
      if ((s == "public" || s == "private" || s == "protected") && i + 1 < e &&
          toks_[i + 1].text == ":") {
        i += 2;
        continue;
      }
      if (s == "using" || s == "typedef" || s == "friend" ||
          s == "static_assert") {
        while (i < e && toks_[i].text != ";") ++i;
        ++i;
        continue;
      }
      if (s == "enum") {
        i = SkipEnum(i, e);
        continue;
      }
      if (s == "class" || s == "struct") {
        size_t j = i + 1;
        while (j < e && toks_[j].text != "{" && toks_[j].text != ";" &&
               toks_[j].text != "(") {
          ++j;
        }
        if (j < e && toks_[j].text == "{") {
          i = ParseClassOrSkip(i, e);  // nested type definition
        } else {
          ++i;  // elaborated type in a member decl; rescan without keyword
        }
        continue;
      }
      if (s == "template") {
        const size_t j = (i + 1 < e && toks_[i + 1].text == "<")
                             ? SkipTemplateArgs(i + 1)
                             : i + 1;
        i = (j == kNpos) ? i + 1 : j;
        continue;
      }
      if (s == ";") {
        ++i;
        continue;
      }

      // Scan the member segment for its shape: method (name followed by
      // `(`) or data member (terminated by `;` / `=` / brace-init `{`).
      size_t j = i;
      size_t paren = kNpos;
      while (j < e) {
        const std::string& t = toks_[j].text;
        if (t == "<") {
          const size_t k = SkipTemplateArgs(j);
          if (k == kNpos) {
            ++j;
          } else {
            j = k;
          }
          continue;
        }
        if (t == "(") {
          if (j > i && IsIdent(toks_[j - 1])) paren = j;
          break;
        }
        if (t == ";" || t == "{" || t == "=") break;
        ++j;
      }
      if (j >= e) break;
      if (paren != kNpos) {
        size_t next_i = kNpos;
        if (TryParseFunctionAt(i, paren, e, cls_name, &next_i)) {
          i = next_i;
          continue;
        }
        i = SkipMemberTail(paren, e);
        continue;
      }
      if (toks_[j].text == "(") {
        // `(` without a preceding identifier: operator overload etc.
        i = SkipMemberTail(j, e);
        continue;
      }
      RecordDataMember(cls, i, j);
      if (toks_[j].text == "{") j = SkipBalanced(j, "{", "}");
      while (j < e && toks_[j].text != ";") ++j;
      i = j < e ? j + 1 : e;
    }
  }

  /// Skips from a member's `(` past its parameter list, trailer and inline
  /// body (if any); returns the index of the next member.
  size_t SkipMemberTail(size_t paren, size_t e) {
    size_t j = SkipBalanced(paren, "(", ")");
    while (j < e) {
      const std::string& t = toks_[j].text;
      if (t == "{") return SkipBalanced(j, "{", "}");
      if (t == ";") return j + 1;
      if (t == "(") {
        j = SkipBalanced(j, "(", ")");
        continue;
      }
      ++j;
    }
    return e;
  }

  void RecordDataMember(RawClass& cls, size_t b, size_t term) {
    // Declarator name: the last identifier before the terminator.
    size_t name_pos = kNpos;
    for (size_t k = b; k < term; ++k) {
      if (IsIdent(toks_[k])) name_pos = k;
    }
    if (name_pos == kNpos) return;
    const std::string& name = toks_[name_pos].text;
    std::vector<std::string> type_ids;
    bool is_mutex = false;
    for (size_t k = b; k < name_pos; ++k) {
      if (!IsIdent(toks_[k])) continue;
      type_ids.push_back(toks_[k].text);
      if (toks_[k].text == "mutex" || toks_[k].text == "shared_mutex") {
        is_mutex = true;
      }
    }
    if (type_ids.empty()) return;
    cls.member_types[name] = std::move(type_ids);
    if (is_mutex) cls.mutex_members.insert(name);
  }

  /// Namespace-scope path: finds the first `ident (` before any statement
  /// terminator and hands off to TryParseFunctionAt.
  bool TryParseFunctionFrom(size_t i, size_t e, const std::string& default_cls,
                            size_t* out_next) {
    size_t j = i;
    while (j < e) {
      const std::string& t = toks_[j].text;
      if (t == "<") {
        const size_t k = SkipTemplateArgs(j);
        if (k == kNpos) return false;
        j = k;
        continue;
      }
      if (t == "(") {
        if (j > i && IsIdent(toks_[j - 1])) {
          return TryParseFunctionAt(i, j, e, default_cls, out_next);
        }
        return false;
      }
      if (t == ";" || t == "{" || t == "}" || t == "=") return false;
      ++j;
    }
    return false;
  }

  bool TryParseFunctionAt(size_t decl_start, size_t paren, size_t e,
                          const std::string& default_cls, size_t* out_next) {
    if (!IsIdent(toks_[paren - 1])) return false;
    const std::string name = toks_[paren - 1].text;
    std::string cls = default_cls;
    size_t qual_end = paren - 1;  // exclusive end of the return type
    if (paren >= 3 && toks_[paren - 2].text == "::" &&
        IsIdent(toks_[paren - 3])) {
      cls = toks_[paren - 3].text;
      qual_end = paren - 3;
      // Hop over any further namespace qualification (a::b::Cls::f).
      while (qual_end >= 2 && toks_[qual_end - 1].text == "::" &&
             IsIdent(toks_[qual_end - 2])) {
        qual_end -= 2;
      }
    }
    const size_t after_params = SkipBalanced(paren, "(", ")");

    std::vector<std::string> ret_ids;
    for (size_t k = decl_start; k < qual_end; ++k) {
      if (IsIdent(toks_[k]) && !TypeSpecifierNoise().count(toks_[k].text) &&
          !DeclOnlySpecifier(toks_[k].text)) {
        ret_ids.push_back(toks_[k].text);
      }
    }

    size_t j = after_params;
    while (j < e) {
      const std::string& t = toks_[j].text;
      if (t == "const" || t == "noexcept" || t == "override" ||
          t == "final" || t == "mutable" || t == "&" || t == "&&") {
        ++j;
        if (j < e && toks_[j].text == "(") j = SkipBalanced(j, "(", ")");
        continue;
      }
      if (t == "->") {
        ++j;
        while (j < e && toks_[j].text != "{" && toks_[j].text != ";" &&
               toks_[j].text != "=") {
          if (toks_[j].text == "<") {
            const size_t k = SkipTemplateArgs(j);
            j = (k == kNpos) ? j + 1 : k;
          } else {
            ++j;
          }
        }
        continue;
      }
      break;
    }
    if (j >= e) return false;

    auto record_decl = [&]() {
      if (!cls.empty() && !ret_ids.empty()) {
        RawClass& rc = (*classes_)[cls];
        rc.name = cls;
        rc.method_returns[name] = ret_ids;
      }
    };

    if (toks_[j].text == ";") {
      record_decl();
      *out_next = j + 1;
      return true;
    }
    if (toks_[j].text == "=") {  // = default / = delete / = 0
      while (j < e && toks_[j].text != ";") ++j;
      record_decl();
      *out_next = j < e ? j + 1 : e;
      return true;
    }
    if (toks_[j].text == "{") {
      const size_t body_end = SkipBalanced(j, "{", "}");
      record_decl();
      ExtractFunction(cls, name, paren, after_params, j + 1,
                      body_end > 0 ? body_end - 1 : e);
      *out_next = body_end;
      return true;
    }
    if (toks_[j].text == ":") {
      // Ctor init list: events in the initializers count (they call member
      // ctors and builders), so scan from the colon through the body.
      size_t k = j + 1;
      int pd = 0;
      size_t body = kNpos;
      while (k < e) {
        const std::string& t = toks_[k].text;
        if (t == "(") ++pd;
        if (t == ")") --pd;
        if (t == "{" && pd == 0) {
          if (IsIdent(toks_[k - 1])) {
            k = SkipBalanced(k, "{", "}");  // brace-init member
            continue;
          }
          body = k;
          break;
        }
        ++k;
      }
      if (body == kNpos) return false;
      const size_t body_end = SkipBalanced(body, "{", "}");
      record_decl();
      ExtractFunction(cls, name, paren, after_params, j + 1,
                      body_end > 0 ? body_end - 1 : e);
      *out_next = body_end;
      return true;
    }
    return false;
  }

  static bool DeclOnlySpecifier(const std::string& t) {
    return t == "virtual" || t == "explicit" || t == "friend" ||
           t == "extern" || t == "operator";
  }

  void ExtractFunction(const std::string& cls, const std::string& name,
                       size_t paren, size_t after_params, size_t ev_b,
                       size_t ev_e) {
    RawFunction fn;
    fn.file = file_;
    fn.cls = cls;
    fn.name = name;
    ParseParams(paren + 1, after_params > 0 ? after_params - 1 : paren + 1,
                &fn);
    ScanEvents(ev_b, ev_e, &fn);
    functions_->push_back(std::move(fn));
  }

  void ParseParams(size_t b, size_t e, RawFunction* fn) {
    size_t start = b;
    int depth = 0;
    for (size_t k = b; k <= e; ++k) {
      const bool at_end = (k == e);
      const std::string& t = at_end ? std::string(",") : toks_[k].text;
      if (!at_end) {
        if (t == "(" || t == "[" || t == "{" || t == "<") ++depth;
        if (t == ")" || t == "]" || t == "}" || t == ">") --depth;
      }
      if ((at_end || (t == "," && depth == 0)) && k > start) {
        // One parameter: last ident (before any default `=`) is the name.
        size_t stop = k;
        for (size_t p = start; p < k; ++p) {
          if (toks_[p].text == "=") {
            stop = p;
            break;
          }
        }
        size_t name_pos = kNpos;
        for (size_t p = start; p < stop; ++p) {
          if (IsIdent(toks_[p])) name_pos = p;
        }
        if (name_pos != kNpos && name_pos > start) {
          std::vector<std::string> type_ids;
          for (size_t p = start; p < name_pos; ++p) {
            if (IsIdent(toks_[p]) &&
                !TypeSpecifierNoise().count(toks_[p].text)) {
              type_ids.push_back(toks_[p].text);
            }
          }
          if (!type_ids.empty()) {
            fn->locals[toks_[name_pos].text] = std::move(type_ids);
          }
        }
        start = k + 1;
      }
    }
  }

  /// Normalizes a lock-expression token range into "a.b.c" form: `->` and
  /// `::` collapse to '.', `this.` strips, non-identifier noise drops.
  std::string NormalizeExpr(size_t b, size_t e) const {
    std::string out;
    for (size_t k = b; k < e; ++k) {
      if (!IsIdent(toks_[k])) continue;
      if (!out.empty()) out.push_back('.');
      out += toks_[k].text;
    }
    if (out.rfind("this.", 0) == 0) out = out.substr(5);
    return out;
  }

  void ScanEvents(size_t b, size_t e, RawFunction* fn);

  struct ActiveGuard {
    std::vector<std::string> exprs;
    std::string var;
    int depth;
    bool released;
  };

  std::vector<std::string> HeldExprs(
      const std::vector<ActiveGuard>& guards) const {
    std::vector<std::string> out;
    for (const ActiveGuard& g : guards) {
      if (g.released) continue;
      for (const std::string& x : g.exprs) {
        if (std::find(out.begin(), out.end(), x) == out.end()) {
          out.push_back(x);
        }
      }
    }
    return out;
  }

  bool TryParseGuard(size_t i, size_t e, int depth,
                     std::vector<ActiveGuard>* guards, RawFunction* fn,
                     size_t* out_next);
  void TryParseLocalDecl(size_t i, size_t e, RawFunction* fn);
  void HandleCall(size_t i, size_t e, std::vector<ActiveGuard>* guards,
                  RawFunction* fn);

  /// toks_[close] == ")"; returns the index of the matching "(" or kNpos.
  size_t MatchBack(size_t close) const {
    int depth = 0;
    for (size_t j = close + 1; j-- > 0;) {
      if (toks_[j].text == ")") ++depth;
      if (toks_[j].text == "(") {
        --depth;
        if (depth == 0) return j;
      }
    }
    return kNpos;
  }

  const std::string file_;
  const std::vector<Token>& toks_;
  std::map<std::string, RawClass>* classes_;
  std::vector<RawFunction>* functions_;
};

void FileExtractor::ScanEvents(size_t b, size_t e, RawFunction* fn) {
  std::vector<ActiveGuard> guards;
  int depth = 0;
  bool stmt_start = true;
  size_t i = b;
  while (i < e) {
    const std::string& t = toks_[i].text;
    if (t == "{") {
      ++depth;
      stmt_start = true;
      ++i;
      continue;
    }
    if (t == "}") {
      // The scope closing here kills every guard declared at this depth.
      guards.erase(std::remove_if(guards.begin(), guards.end(),
                                  [&](const ActiveGuard& g) {
                                    return g.depth >= depth;
                                  }),
                   guards.end());
      --depth;
      stmt_start = true;
      ++i;
      continue;
    }
    if (t == ";") {
      stmt_start = true;
      ++i;
      continue;
    }
    if (t == "(") {
      // A control-statement condition opens a declaration context
      // (`for (auto& shard : shards_)` declares a range local).
      if (i > b && (toks_[i - 1].text == "for" || toks_[i - 1].text == "if" ||
                    toks_[i - 1].text == "while" ||
                    toks_[i - 1].text == "switch")) {
        stmt_start = true;
      }
      ++i;
      continue;
    }
    if (!IsIdent(toks_[i])) {
      ++i;
      continue;
    }

    if (GuardTypes().count(t)) {
      size_t next_i = kNpos;
      if (TryParseGuard(i, e, depth, &guards, fn, &next_i)) {
        stmt_start = false;
        i = next_i;
        continue;
      }
    }
    if (stmt_start) {
      TryParseLocalDecl(i, e, fn);
      stmt_start = false;
    }
    if ((t == "make_unique" || t == "make_shared") && i + 1 < e &&
        toks_[i + 1].text == "<") {
      const size_t k = SkipTemplateArgs(i + 1);
      if (k != kNpos && k < e && toks_[k].text == "(") {
        std::string type_name;
        for (size_t q = i + 2; q + 1 < k; ++q) {
          if (IsIdent(toks_[q])) type_name = toks_[q].text;
        }
        RawEvent ev;
        ev.line = toks_[i].line;
        ev.col = toks_[i].col;
        ev.callee = "#ctor:" + type_name;
        ev.display = t + "<" + type_name + ">(...)";
        ev.held_exprs = HeldExprs(guards);
        fn->events.push_back(std::move(ev));
        i = k + 1;
        continue;
      }
    }
    if (i + 1 < e && toks_[i + 1].text == "(" &&
        !NonCalleeKeywords().count(t) && !GuardTypes().count(t)) {
      HandleCall(i, e, &guards, fn);
    }
    ++i;
  }
}

bool FileExtractor::TryParseGuard(size_t i, size_t e, int depth,
                                  std::vector<ActiveGuard>* guards,
                                  RawFunction* fn, size_t* out_next) {
  size_t j = i + 1;
  if (j < e && toks_[j].text == "<") {
    j = SkipTemplateArgs(j);
    if (j == kNpos || j >= e) return false;
  }
  if (j >= e || !IsIdent(toks_[j])) return false;
  const std::string var = toks_[j].text;
  const size_t paren = j + 1;
  if (paren >= e ||
      (toks_[paren].text != "(" && toks_[paren].text != "{")) {
    return false;
  }
  const char* open = toks_[paren].text == "(" ? "(" : "{";
  const char* close = toks_[paren].text == "(" ? ")" : "}";
  const size_t after = SkipBalanced(paren, open, close);

  // Split the argument list at top-level commas and normalize each lock
  // expression; std::defer_lock means no acquisition happens here.
  std::vector<std::string> exprs;
  bool deferred = false;
  size_t start = paren + 1;
  int d = 0;
  for (size_t k = paren + 1; k < after; ++k) {
    const std::string& at = toks_[k].text;
    const bool last = (k + 1 == after);
    if (!last) {
      if (at == "(" || at == "[" || at == "{" || at == "<") ++d;
      if (at == ")" || at == "]" || at == "}" || at == ">") --d;
    }
    if ((last || (at == "," && d == 0)) && k > start) {
      const size_t end = last ? k : k;
      bool is_tag = false;
      for (size_t q = start; q < end; ++q) {
        if (IsIdent(toks_[q]) && LockTagArgs().count(toks_[q].text)) {
          is_tag = true;
          if (toks_[q].text == "defer_lock") deferred = true;
        }
      }
      if (!is_tag) {
        std::string expr = NormalizeExpr(start, end);
        if (!expr.empty()) exprs.push_back(std::move(expr));
      }
      start = k + 1;
    }
  }
  *out_next = after;
  if (deferred || exprs.empty()) return true;  // consumed; nothing acquired

  RawEvent ev;
  ev.is_acquire = true;
  ev.line = toks_[i].line;
  ev.col = toks_[i].col;
  ev.lock_exprs = exprs;
  ev.atomic_group = (toks_[i].text == "scoped_lock" && exprs.size() > 1);
  ev.held_exprs = HeldExprs(*guards);
  fn->events.push_back(std::move(ev));
  guards->push_back({std::move(exprs), var, depth, false});
  return true;
}

void FileExtractor::TryParseLocalDecl(size_t i, size_t e, RawFunction* fn) {
  if (StmtAbortKeywords().count(toks_[i].text)) return;
  std::string name;
  std::vector<std::string> type_ids;
  bool saw_auto = false;
  size_t j = i;
  std::string term;
  while (j < e) {
    const std::string& t = toks_[j].text;
    if (IsIdent(toks_[j])) {
      if (StmtAbortKeywords().count(t)) return;
      if (t == "auto") {
        saw_auto = true;
      } else if (!TypeSpecifierNoise().count(t)) {
        if (!name.empty()) type_ids.push_back(name);
        name = t;
      }
      ++j;
      continue;
    }
    if (t == "<") {
      const size_t k = SkipTemplateArgs(j);
      if (k == kNpos) return;
      if (!name.empty()) {
        type_ids.push_back(name);
        name.clear();
      }
      for (size_t q = j + 1; q + 1 < k; ++q) {
        if (IsIdent(toks_[q]) && !TypeSpecifierNoise().count(toks_[q].text)) {
          type_ids.push_back(toks_[q].text);
        }
      }
      j = k;
      continue;
    }
    if (t == "::" || t == "*" || t == "&" || t == "&&") {
      ++j;
      continue;
    }
    if (t == "=" || t == ";" || t == "(" || t == "{" || t == ":" ||
        t == ",") {
      term = t;
      break;
    }
    return;  // any other token: this is an expression, not a declaration
  }
  if (name.empty()) return;
  if (term == ":" && saw_auto) {
    // Range-for with deduced element type: remember the range expression so
    // the analyzer can resolve the element class from the container's type.
    for (size_t q = j + 1; q < e; ++q) {
      if (IsIdent(toks_[q])) {
        fn->range_locals[name] = toks_[q].text;
        return;
      }
      if (toks_[q].text == ")" || toks_[q].text == ";") return;
    }
    return;
  }
  if (type_ids.empty()) return;
  fn->locals[name] = std::move(type_ids);
}

void FileExtractor::HandleCall(size_t i, size_t e,
                               std::vector<ActiveGuard>* guards,
                               RawFunction* fn) {
  const std::string& callee = toks_[i].text;
  std::string static_cls;
  std::vector<std::string> chain;
  bool chain_ok = true;
  if (i >= 2 && toks_[i - 1].text == "::" && IsIdent(toks_[i - 2])) {
    static_cls = toks_[i - 2].text;
  } else {
    size_t p = i;
    while (p >= 2 &&
           (toks_[p - 1].text == "." || toks_[p - 1].text == "->")) {
      const size_t before = p - 2;
      if (toks_[before].text == ")") {
        const size_t open = MatchBack(before);
        if (open == kNpos || open == 0 || !IsIdent(toks_[open - 1])) {
          chain_ok = false;
          break;
        }
        chain.push_back(toks_[open - 1].text + "()");
        p = open - 1;
      } else if (IsIdent(toks_[before])) {
        chain.push_back(toks_[before].text);
        p = before;
      } else {
        chain_ok = false;
        break;
      }
    }
    std::reverse(chain.begin(), chain.end());
    if (!chain.empty() && chain.front() == "this") chain.erase(chain.begin());
  }

  // `guard.unlock()` releases early, inside the enclosing scope.
  if (callee == "unlock" && chain.size() == 1) {
    for (ActiveGuard& g : *guards) {
      if (g.var == chain[0]) {
        g.released = true;
        return;
      }
    }
  }

  RawEvent ev;
  ev.line = toks_[i].line;
  ev.col = toks_[i].col;
  ev.callee = callee;
  ev.static_cls = static_cls;
  ev.chain = chain;
  ev.chain_ok = chain_ok;
  if (!static_cls.empty()) {
    ev.display = static_cls + "::" + callee + "(...)";
  } else {
    for (const std::string& el : chain) ev.display += el + ".";
    ev.display += callee + "(...)";
  }
  ev.held_exprs = HeldExprs(*guards);
  fn->events.push_back(std::move(ev));
}

// ---------------------------------------------------------------------------
// Global analysis
// ---------------------------------------------------------------------------

const std::set<std::string>& OracleCallees() {
  static const std::set<std::string> kSet = {"Optimize", "TryOptimize"};
  return kSet;
}

const std::set<std::string>& TransportCallees() {
  static const std::set<std::string> kSet = {"SendFrame", "RecvFrame"};
  return kSet;
}

/// `Close` only counts as a transport call when the receiver types out to
/// the FrameTransport family — plenty of things close that aren't sockets.
constexpr const char* kTransportBase = "FrameTransport";

struct CallTargets {
  std::vector<int> targets;
  bool oracle = false;
  bool transport = false;
};

struct LockEdge {
  std::string file;
  int line = 0;
  int col = 0;
  bool suppressed = false;
};

class Analyzer {
 public:
  Analyzer(std::map<std::string, RawClass> classes,
           std::vector<RawFunction> functions,
           std::map<std::string, Suppressions> sup)
      : classes_(std::move(classes)),
        functions_(std::move(functions)),
        sup_(std::move(sup)) {
    for (size_t fi = 0; fi < functions_.size(); ++fi) {
      const RawFunction& fn = functions_[fi];
      by_method_[{fn.cls, fn.name}].push_back(static_cast<int>(fi));
    }
    for (const auto& [name, cls] : classes_) {
      for (const std::string& base : cls.bases) {
        children_[base].insert(name);
      }
    }
  }

  std::vector<Finding> Run();

 private:
  const std::set<std::string>& Family(const std::string& cls) {
    auto it = family_.find(cls);
    if (it != family_.end()) return it->second;
    std::set<std::string>& fam = family_[cls];
    fam.insert(cls);
    // Ancestors.
    std::vector<std::string> work = {cls};
    while (!work.empty()) {
      const std::string cur = work.back();
      work.pop_back();
      const auto cit = classes_.find(cur);
      if (cit == classes_.end()) continue;
      for (const std::string& base : cit->second.bases) {
        if (fam.insert(base).second) work.push_back(base);
      }
    }
    // Descendants.
    work = {cls};
    while (!work.empty()) {
      const std::string cur = work.back();
      work.pop_back();
      const auto kit = children_.find(cur);
      if (kit == children_.end()) continue;
      for (const std::string& derived : kit->second) {
        if (fam.insert(derived).second) work.push_back(derived);
      }
    }
    return fam;
  }

  std::vector<int> MethodGroup(const std::string& recv_cls,
                               const std::string& name) {
    std::vector<int> out;
    for (const std::string& cls : Family(recv_cls)) {
      const auto it = by_method_.find({cls, name});
      if (it == by_method_.end()) continue;
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
    return out;
  }

  /// The class a type-token list denotes: the LAST identifier naming a
  /// class the model knows (so `std::vector<Shard>` resolves to Shard and
  /// wrapper noise like unique_ptr drops out).
  std::string ResolveTypeToks(const std::vector<std::string>& ids) const {
    std::string out;
    for (const std::string& id : ids) {
      if (classes_.count(id)) out = id;
    }
    return out;
  }

  /// The declared type tokens of `member` on `cls` or any ancestor.
  const std::vector<std::string>* MemberToks(const std::string& cls,
                                             const std::string& member) {
    for (const std::string& c : Family(cls)) {
      const auto cit = classes_.find(c);
      if (cit == classes_.end()) continue;
      const auto mit = cit->second.member_types.find(member);
      if (mit != cit->second.member_types.end()) return &mit->second;
    }
    return nullptr;
  }

  std::string MemberClass(const std::string& cls, const std::string& member) {
    const std::vector<std::string>* toks = MemberToks(cls, member);
    return toks == nullptr ? std::string() : ResolveTypeToks(*toks);
  }

  std::string MethodReturnClass(const std::string& cls,
                                const std::string& method) {
    for (const std::string& c : Family(cls)) {
      const auto cit = classes_.find(c);
      if (cit == classes_.end()) continue;
      const auto mit = cit->second.method_returns.find(method);
      if (mit != cit->second.method_returns.end()) {
        return ResolveTypeToks(mit->second);
      }
    }
    return "";
  }

  /// The class of a local/param/range variable, or "".
  std::string LocalClass(const RawFunction& fn, const std::string& var) {
    const auto lit = fn.locals.find(var);
    if (lit != fn.locals.end()) return ResolveTypeToks(lit->second);
    const auto rit = fn.range_locals.find(var);
    if (rit != fn.range_locals.end()) {
      // Element type of the ranged container: its declared type tokens
      // already contain the element class (e.g. std::vector<Shard>).
      const auto bit = fn.locals.find(rit->second);
      if (bit != fn.locals.end()) return ResolveTypeToks(bit->second);
      if (!fn.cls.empty()) return MemberClass(fn.cls, rit->second);
    }
    return "";
  }

  /// Canonical identity of a lock expression. `Class::member` whenever the
  /// expression types out (unifying `mu_`, `other.mu_` and `shard.mu`
  /// across functions); otherwise a class- or file-scoped fallback that can
  /// split one lock into two nodes but can never merge two locks into one.
  std::string LockIdOf(const RawFunction& fn, const std::string& expr) {
    const std::string scope = fn.cls.empty() ? fn.file : fn.cls;
    std::vector<std::string> parts;
    size_t start = 0;
    while (start <= expr.size()) {
      const size_t dot = expr.find('.', start);
      parts.push_back(expr.substr(
          start, dot == std::string::npos ? expr.size() - start : dot - start));
      if (dot == std::string::npos) break;
      start = dot + 1;
    }
    if (parts.size() == 1) return scope + "::" + expr;
    std::string cur = LocalClass(fn, parts[0]);
    if (cur.empty() && !fn.cls.empty()) {
      if (MemberToks(fn.cls, parts[0]) != nullptr) {
        cur = MemberClass(fn.cls, parts[0]);
      }
    }
    if (cur.empty() && classes_.count(parts[0])) cur = parts[0];
    for (size_t k = 1; !cur.empty() && k + 1 < parts.size(); ++k) {
      cur = MemberClass(cur, parts[k]);
    }
    if (cur.empty()) return scope + "::" + expr;
    return cur + "::" + parts.back();
  }

  /// Receiver class of a chained call, or "" when any link fails to type.
  std::string ChainClass(const RawFunction& fn, const RawEvent& ev) {
    if (!ev.chain_ok || ev.chain.empty()) return "";
    std::string cur;
    for (size_t k = 0; k < ev.chain.size(); ++k) {
      const std::string& el = ev.chain[k];
      const bool method = el.size() > 2 && el.substr(el.size() - 2) == "()";
      const std::string base = method ? el.substr(0, el.size() - 2) : el;
      if (k == 0) {
        if (method) {
          cur = fn.cls.empty() ? "" : MethodReturnClass(fn.cls, base);
        } else {
          cur = LocalClass(fn, base);
          if (cur.empty() && !fn.cls.empty() &&
              MemberToks(fn.cls, base) != nullptr) {
            cur = MemberClass(fn.cls, base);
          }
          if (cur.empty() && classes_.count(base)) cur = base;
        }
      } else {
        cur = method ? MethodReturnClass(cur, base) : MemberClass(cur, base);
      }
      if (cur.empty()) return "";
    }
    return cur;
  }

  CallTargets Resolve(const RawFunction& fn, const RawEvent& ev) {
    CallTargets out;
    if (internal::StartsWith(ev.callee, "#ctor:")) {
      const std::string type_name = ev.callee.substr(6);
      if (classes_.count(type_name)) {
        out.targets = MethodGroup(type_name, type_name);
      }
      return out;
    }
    out.oracle = OracleCallees().count(ev.callee) > 0;
    out.transport = TransportCallees().count(ev.callee) > 0;
    if (!ev.static_cls.empty()) {
      if (classes_.count(ev.static_cls)) {
        out.targets = MethodGroup(ev.static_cls, ev.callee);
      }
      return out;
    }
    if (ev.chain.empty()) {
      const auto lit = fn.locals.find(ev.callee);
      if (lit != fn.locals.end()) {
        // `Type var(args);` parses as a call of `var`: the event is the
        // constructor of the declared type.
        const std::string type_name = ResolveTypeToks(lit->second);
        if (!type_name.empty()) {
          out.targets = MethodGroup(type_name, type_name);
        }
        return out;
      }
      if (!fn.cls.empty()) {
        out.targets = MethodGroup(fn.cls, ev.callee);
        if (!out.targets.empty()) return out;
      }
      // Free function in the same file.
      for (size_t fi = 0; fi < functions_.size(); ++fi) {
        const RawFunction& cand = functions_[fi];
        if (cand.cls.empty() && cand.name == ev.callee &&
            cand.file == fn.file) {
          out.targets.push_back(static_cast<int>(fi));
        }
      }
      return out;
    }
    const std::string recv = ChainClass(fn, ev);
    if (recv.empty()) return out;
    if (ev.callee == "Close" && Family(recv).count(kTransportBase)) {
      out.transport = true;
    }
    out.targets = MethodGroup(recv, ev.callee);
    return out;
  }

  bool Suppressed(const RawFunction& fn, int line) const {
    const auto it = sup_.find(fn.file);
    if (it == sup_.end()) return false;
    return IsSuppressed(it->second, Rule::kLockDiscipline, line);
  }

  std::map<std::string, RawClass> classes_;
  std::vector<RawFunction> functions_;
  std::map<std::string, Suppressions> sup_;
  std::map<std::pair<std::string, std::string>, std::vector<int>> by_method_;
  std::map<std::string, std::set<std::string>> children_;
  std::map<std::string, std::set<std::string>> family_;
};

std::vector<Finding> Analyzer::Run() {
  std::vector<Finding> findings;
  const size_t n = functions_.size();

  // Resolve every call event once.
  std::vector<std::vector<CallTargets>> resolved(n);
  for (size_t fi = 0; fi < n; ++fi) {
    const RawFunction& fn = functions_[fi];
    resolved[fi].resize(fn.events.size());
    for (size_t ei = 0; ei < fn.events.size(); ++ei) {
      if (!fn.events[ei].is_acquire) {
        resolved[fi][ei] = Resolve(fn, fn.events[ei]);
      }
    }
  }

  // Fixpoint: every lock a function may acquire (directly or transitively)
  // and whether it reaches an oracle / transport boundary.
  std::vector<std::set<std::string>> locks_all(n);
  std::vector<char> reach_oracle(n, 0);
  std::vector<char> reach_transport(n, 0);
  for (size_t fi = 0; fi < n; ++fi) {
    const RawFunction& fn = functions_[fi];
    for (size_t ei = 0; ei < fn.events.size(); ++ei) {
      const RawEvent& ev = fn.events[ei];
      if (ev.is_acquire) {
        for (const std::string& expr : ev.lock_exprs) {
          locks_all[fi].insert(LockIdOf(fn, expr));
        }
      } else {
        if (resolved[fi][ei].oracle) reach_oracle[fi] = 1;
        if (resolved[fi][ei].transport) reach_transport[fi] = 1;
      }
    }
  }
  bool changed = true;
  for (int iter = 0; changed && iter < 100; ++iter) {
    changed = false;
    for (size_t fi = 0; fi < n; ++fi) {
      for (size_t ei = 0; ei < functions_[fi].events.size(); ++ei) {
        if (functions_[fi].events[ei].is_acquire) continue;
        for (int t : resolved[fi][ei].targets) {
          const size_t ti = static_cast<size_t>(t);
          for (const std::string& lock : locks_all[ti]) {
            if (locks_all[fi].insert(lock).second) changed = true;
          }
          if (reach_oracle[ti] && !reach_oracle[fi]) {
            reach_oracle[fi] = 1;
            changed = true;
          }
          if (reach_transport[ti] && !reach_transport[fi]) {
            reach_transport[fi] = 1;
            changed = true;
          }
        }
      }
    }
  }

  // Acquired-before edges, plus the direct findings.
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const RawFunction& fn, const RawEvent& ev) {
    if (from == to) return;  // instance aliasing (move ctors, swaps)
    const bool sup_here = Suppressed(fn, ev.line);
    auto [it, inserted] = edges.try_emplace(
        {from, to}, LockEdge{fn.file, ev.line, ev.col, sup_here});
    if (!inserted) {
      it->second.suppressed = it->second.suppressed || sup_here;
      // Keep the earliest site as the anchor.
      if (std::tie(fn.file, ev.line, ev.col) <
          std::tie(it->second.file, it->second.line, it->second.col)) {
        it->second.file = fn.file;
        it->second.line = ev.line;
        it->second.col = ev.col;
      }
    }
  };

  for (size_t fi = 0; fi < n; ++fi) {
    const RawFunction& fn = functions_[fi];
    for (size_t ei = 0; ei < fn.events.size(); ++ei) {
      const RawEvent& ev = fn.events[ei];
      std::vector<std::string> held_ids;
      for (const std::string& h : ev.held_exprs) {
        held_ids.push_back(LockIdOf(fn, h));
      }
      if (ev.is_acquire) {
        for (const std::string& expr : ev.lock_exprs) {
          const std::string lock = LockIdOf(fn, expr);
          for (const std::string& h : held_ids) add_edge(h, lock, fn, ev);
          const bool re_acquired =
              std::find(ev.held_exprs.begin(), ev.held_exprs.end(), expr) !=
              ev.held_exprs.end();
          if (re_acquired && !Suppressed(fn, ev.line)) {
            findings.push_back(
                {fn.file, ev.line, ev.col, Rule::kLockDiscipline,
                 "lock '" + expr +
                     "' is acquired while already held (R8): re-locking a "
                     "std::mutex is a guaranteed self-deadlock",
                 ""});
          }
        }
        continue;
      }
      const CallTargets& ct = resolved[fi][ei];
      bool callee_oracle = ct.oracle;
      bool callee_transport = ct.transport;
      for (int t : ct.targets) {
        const size_t ti = static_cast<size_t>(t);
        callee_oracle = callee_oracle || reach_oracle[ti];
        callee_transport = callee_transport || reach_transport[ti];
        if (!held_ids.empty()) {
          for (const std::string& lock : locks_all[ti]) {
            for (const std::string& h : held_ids) add_edge(h, lock, fn, ev);
          }
        }
      }
      if (!held_ids.empty() && (callee_oracle || callee_transport) &&
          !Suppressed(fn, ev.line)) {
        std::string held_list;
        for (const std::string& h : ev.held_exprs) {
          if (!held_list.empty()) held_list += "', '";
          held_list += h;
        }
        std::string boundary;
        if (callee_oracle && callee_transport) {
          boundary = "the oracle (Optimize/TryOptimize) and transport "
                     "(SendFrame/RecvFrame/Close) boundaries";
        } else if (callee_oracle) {
          boundary = "the oracle boundary (Optimize/TryOptimize); blocking "
                     "the optimizer under a lock serializes every "
                     "concurrent caller";
        } else {
          boundary = "the transport boundary (SendFrame/RecvFrame/Close); "
                     "a slow or stalled peer then holds the lock hostage";
        }
        findings.push_back(
            {fn.file, ev.line, ev.col, Rule::kLockDiscipline,
             "'" + ev.display + "' is called while holding '" + held_list +
                 "' (R8): the call reaches " + boundary +
                 " — release the lock first or move the call out of the "
                 "critical section",
             ""});
      }
    }
  }

  // Lock-order cycles over the acquired-before graph.
  std::vector<std::string> lock_names;
  std::map<std::string, int> lock_index;
  auto node_of = [&](const std::string& name) {
    const auto it = lock_index.find(name);
    if (it != lock_index.end()) return it->second;
    const int idx = static_cast<int>(lock_names.size());
    lock_index[name] = idx;
    lock_names.push_back(name);
    return idx;
  };
  for (const auto& [key, edge] : edges) {
    node_of(key.first);
    node_of(key.second);
  }
  std::vector<std::vector<int>> adj(lock_names.size());
  for (const auto& [key, edge] : edges) {
    adj[static_cast<size_t>(node_of(key.first))].push_back(
        node_of(key.second));
  }
  int component_count = 0;
  const std::vector<int> comp =
      internal::StronglyConnectedComponents(adj, &component_count);
  std::vector<std::vector<int>> members(static_cast<size_t>(component_count));
  for (size_t u = 0; u < lock_names.size(); ++u) {
    members[static_cast<size_t>(comp[u])].push_back(static_cast<int>(u));
  }
  for (const std::vector<int>& scc : members) {
    if (scc.size() < 2) continue;  // self-edges were filtered at add_edge
    // Collect the component's internal edges in a deterministic order.
    std::vector<std::pair<std::pair<std::string, std::string>,
                          const LockEdge*>> cyc;
    bool vouched = false;
    for (const auto& [key, edge] : edges) {
      const int a = lock_index[key.first];
      const int b = lock_index[key.second];
      if (comp[static_cast<size_t>(a)] != comp[static_cast<size_t>(b)]) {
        continue;
      }
      if (comp[static_cast<size_t>(a)] !=
          comp[static_cast<size_t>(scc[0])]) {
        continue;
      }
      cyc.push_back({key, &edge});
      vouched = vouched || edge.suppressed;
    }
    if (cyc.empty() || vouched) continue;
    // Anchor at the earliest participating site.
    const LockEdge* anchor = cyc[0].second;
    for (const auto& [key, edge] : cyc) {
      if (std::tie(edge->file, edge->line, edge->col) <
          std::tie(anchor->file, anchor->line, anchor->col)) {
        anchor = edge;
      }
    }
    std::string rendered;
    size_t listed = 0;
    for (const auto& [key, edge] : cyc) {
      if (listed == 3) {
        rendered += "; ...";
        break;
      }
      if (!rendered.empty()) rendered += "; ";
      rendered += key.first + " -> " + key.second + " (" + edge->file + ":" +
                  std::to_string(edge->line) + ")";
      ++listed;
    }
    findings.push_back(
        {anchor->file, anchor->line, anchor->col, Rule::kLockDiscipline,
         "inconsistent lock acquisition order (R8): " + rendered +
             "; concurrent threads taking these paths can deadlock — pick "
             "one global acquisition order",
         ""});
  }

  return findings;
}

}  // namespace

std::vector<Finding> CheckLockDiscipline(const std::vector<SourceFile>& files) {
  std::map<std::string, RawClass> classes;
  std::vector<RawFunction> functions;
  std::map<std::string, Suppressions> sup;
  for (const SourceFile& file : files) {
    if (ClassifyPath(file.path).root != PathClass::kSrc) continue;
    const LexedFile lexed = Lex(file.content);
    sup[file.path] = internal::CollectSuppressions(file.path, lexed.comments);
    FileExtractor(file.path, lexed, &classes, &functions).Run();
  }
  Analyzer analyzer(std::move(classes), std::move(functions), std::move(sup));
  return analyzer.Run();
}

}  // namespace costsense::lint
