// costsense_lint CLI: walks source roots, runs the per-file rules plus the
// whole-program passes (R7 layering when --layers is given, R8 lock
// discipline always), prints findings, exits nonzero when dirty.
//
// Usage:
//   costsense_lint --root src --root bench --root tests --root tools
//       [--layers tools/lint/layers.toml] [--format text|json]
//       [--exclude tests/tools/lint/corpus] [--relative-to .]
//
// Exit codes are stable for CI: 0 clean, 1 findings, 2 usage/config error
// (including an unparseable layers.toml — a broken manifest must fail the
// gate, never silently disable it).
//
// This tool is not part of the scanned library tree, so it may use any
// I/O it likes.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;

namespace {

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

std::string NormalizeSlashes(std::string s) {
  std::replace(s.begin(), s.end(), '\\', '/');
  return s;
}

bool UnderPrefix(const std::string& path, const std::string& prefix) {
  if (path.size() < prefix.size()) return false;
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  return path.size() == prefix.size() || path[prefix.size()] == '/' ||
         prefix.back() == '/';
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --root <dir> [--root <dir>...] [--exclude <prefix>...]"
               " [--relative-to <dir>] [--layers <layers.toml>]"
               " [--format text|json]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::vector<std::string> excludes;
  std::string relative_to;
  std::string layers_path;
  std::string format = "text";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      roots.push_back(v);
    } else if (arg == "--exclude") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      excludes.push_back(NormalizeSlashes(v));
    } else if (arg == "--relative-to") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      relative_to = v;
    } else if (arg == "--layers") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      layers_path = v;
    } else if (arg == "--format") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      format = v;
      if (format != "text" && format != "json") {
        std::cerr << "unknown format '" << format << "'; use text or json\n";
        return 2;
      }
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return Usage(argv[0]);
    }
  }
  if (roots.empty()) return Usage(argv[0]);

  costsense::lint::LayerManifest manifest;
  bool have_manifest = false;
  if (!layers_path.empty()) {
    std::ifstream in(layers_path, std::ios::binary);
    if (!in) {
      std::cerr << "cannot read layer manifest " << layers_path << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (!costsense::lint::ParseLayerManifest(buf.str(), &manifest, &error)) {
      std::cerr << "costsense-lint: " << error << "\n";
      return 2;
    }
    have_manifest = true;
  }

  // Deterministic file order regardless of directory-entry order.
  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    fs::recursive_directory_iterator it(root, ec), end;
    if (ec) {
      std::cerr << "cannot open root '" << root << "': " << ec.message()
                << "\n";
      return 2;
    }
    for (; it != end; ++it) {
      if (!it->is_regular_file() || !HasSourceExtension(it->path())) continue;
      const std::string norm = NormalizeSlashes(it->path().string());
      bool excluded = false;
      for (const std::string& prefix : excludes) {
        if (UnderPrefix(norm, prefix)) {
          excluded = true;
          break;
        }
      }
      if (!excluded) files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<costsense::lint::SourceFile> sources;
  sources.reserve(files.size());
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string display = NormalizeSlashes(file.string());
    if (!relative_to.empty()) {
      std::error_code ec;
      const fs::path rel = fs::relative(file, relative_to, ec);
      if (!ec && !rel.empty()) display = NormalizeSlashes(rel.string());
    }
    sources.push_back({std::move(display), buf.str()});
  }

  std::vector<costsense::lint::Finding> findings = costsense::lint::AnalyzeRepo(
      sources, have_manifest ? &manifest : nullptr);

  const size_t count = findings.size();
  if (format == "json") {
    std::cout << costsense::lint::FormatFindingsJson(std::move(findings));
  } else {
    std::cout << costsense::lint::FormatFindings(std::move(findings));
  }
  std::cerr << "costsense-lint: " << sources.size() << " files scanned, "
            << count << " finding(s)\n";
  return count == 0 ? 0 : 1;
}
