#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "internal.h"
#include "lint.h"

/// layers.toml loader. The manifest is a deliberately small TOML subset —
/// exactly what the layer declaration needs and nothing more:
///
///   [layers]
///   common = []                 # bottom layer: includes nothing
///   linalg = ["common"]         # may include common/ only
///
///   [[exception]]               # documented, load-bearing back-edge
///   from = "runtime"            # module, or module-relative file
///   to = "core/oracle.h"        # module, or module-relative file
///   why = "dependency inversion on a pure interface"
///
/// Declaration order in [layers] is the bottom→top layer order used for
/// documentation; the machine-checked property is the per-module allowed
/// list. Parsing is strict: unknown sections, malformed arrays, undeclared
/// modules in an allowed list, a cyclic allowed graph, or an exception
/// missing from/to/why all fail the parse (the CLI exits 2 — a broken
/// manifest must never silently disable the gate).
namespace costsense::lint {
namespace {

using internal::Trim;

/// Strips a trailing `# comment`, respecting quoted strings.
std::string_view StripToml(std::string_view line) {
  bool in_string = false;
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') in_string = !in_string;
    if (line[i] == '#' && !in_string) return line.substr(0, i);
  }
  return line;
}

bool ParseQuoted(std::string_view text, std::string* out) {
  text = Trim(text);
  if (text.size() < 2 || text.front() != '"' || text.back() != '"') {
    return false;
  }
  *out = std::string(text.substr(1, text.size() - 2));
  return true;
}

/// Parses `["a", "b"]` into a vector; empty arrays allowed.
bool ParseStringArray(std::string_view text, std::vector<std::string>* out) {
  text = Trim(text);
  if (text.size() < 2 || text.front() != '[' || text.back() != ']') {
    return false;
  }
  text = Trim(text.substr(1, text.size() - 2));
  while (!text.empty()) {
    const size_t comma = text.find(',');
    std::string_view piece =
        comma == std::string_view::npos ? text : text.substr(0, comma);
    std::string value;
    if (!ParseQuoted(piece, &value) || value.empty()) return false;
    out->push_back(value);
    if (comma == std::string_view::npos) break;
    text = Trim(text.substr(comma + 1));
    if (text.empty()) return false;  // trailing comma
  }
  return true;
}

/// Module an exception's from/to names: the spec itself when it is a
/// declared module, else the longest declared directory prefix (nested
/// modules like "runtime/sink"), else the first path component.
std::string ModuleOf(const LayerManifest& manifest, const std::string& spec) {
  if (manifest.allowed.count(spec)) return spec;
  std::string best;
  size_t slash = spec.find('/');
  while (slash != std::string::npos) {
    const std::string prefix = spec.substr(0, slash);
    if (manifest.allowed.count(prefix)) best = prefix;
    slash = spec.find('/', slash + 1);
  }
  if (!best.empty()) return best;
  slash = spec.find('/');
  return slash == std::string::npos ? spec : spec.substr(0, slash);
}

/// The allowed graph must be acyclic: an edge whitelist containing a cycle
/// would let a genuine layering knot pass silently. Iterative DFS.
bool AllowedGraphHasCycle(const LayerManifest& manifest, std::string* cycle) {
  std::map<std::string, int> state;  // 0 unvisited, 1 in-stack, 2 done
  for (const std::string& start : manifest.order) {
    if (state[start] != 0) continue;
    std::vector<std::pair<std::string, size_t>> stack = {{start, 0}};
    state[start] = 1;
    while (!stack.empty()) {
      // Copy, not bind: push_back below may reallocate the stack.
      const std::string node = stack.back().first;
      const size_t next = stack.back().second;
      const auto it = manifest.allowed.find(node);
      std::vector<std::string> targets(it->second.begin(), it->second.end());
      if (next >= targets.size()) {
        state[node] = 2;
        stack.pop_back();
        continue;
      }
      stack.back().second = next + 1;
      const std::string& target = targets[next];
      if (state[target] == 1) {
        *cycle = node + " -> " + target;
        return true;
      }
      if (state[target] == 0) {
        state[target] = 1;
        stack.push_back({target, 0});
      }
    }
  }
  return false;
}

}  // namespace

bool ParseLayerManifest(std::string_view text, LayerManifest* out,
                        std::string* error) {
  *out = LayerManifest{};
  enum class Section { kNone, kLayers, kException } section = Section::kNone;

  auto fail = [&](int line, const std::string& why) {
    *error = "layers.toml:" + std::to_string(line) + ": " + why;
    return false;
  };

  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t nl = text.find('\n', pos);
    std::string_view raw = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    const std::string_view line = Trim(StripToml(raw));
    if (line.empty()) continue;

    if (line == "[layers]") {
      section = Section::kLayers;
      continue;
    }
    if (line == "[[exception]]") {
      section = Section::kException;
      out->exceptions.push_back({});
      continue;
    }
    if (line.front() == '[') {
      return fail(line_no, "unknown section '" + std::string(line) +
                               "'; expected [layers] or [[exception]]");
    }

    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return fail(line_no, "expected key = value");
    }
    const std::string key(Trim(line.substr(0, eq)));
    const std::string_view value = Trim(line.substr(eq + 1));

    if (section == Section::kLayers) {
      if (out->allowed.count(key)) {
        return fail(line_no, "module '" + key + "' declared twice");
      }
      std::vector<std::string> targets;
      if (!ParseStringArray(value, &targets)) {
        return fail(line_no, "module '" + key +
                                 "' needs an array of quoted module names, "
                                 "e.g. " +
                                 key + " = [\"common\"]");
      }
      out->order.push_back(key);
      std::set<std::string>& allowed = out->allowed[key];
      for (const std::string& target : targets) {
        if (target == key) {
          return fail(line_no, "module '" + key +
                                   "' lists itself; intra-module includes "
                                   "are always allowed and never declared");
        }
        if (!allowed.insert(target).second) {
          return fail(line_no, "module '" + key + "' lists '" + target +
                                   "' twice");
        }
      }
      continue;
    }
    if (section == Section::kException) {
      LayerException& exc = out->exceptions.back();
      std::string value_str;
      if (!ParseQuoted(value, &value_str) || value_str.empty()) {
        return fail(line_no,
                    "exception key '" + key + "' needs a quoted string");
      }
      if (key == "from") {
        exc.from = value_str;
      } else if (key == "to") {
        exc.to = value_str;
      } else if (key == "why") {
        exc.why = value_str;
      } else {
        return fail(line_no, "unknown exception key '" + key +
                                 "'; expected from/to/why");
      }
      continue;
    }
    return fail(line_no, "key outside a section; start with [layers]");
  }

  if (out->order.empty()) {
    *error = "layers.toml: no [layers] section / no modules declared";
    return false;
  }
  for (const auto& [module, targets] : out->allowed) {
    for (const std::string& target : targets) {
      if (!out->allowed.count(target)) {
        *error = "layers.toml: module '" + module +
                 "' allows undeclared module '" + target + "'";
        return false;
      }
    }
  }
  std::string cycle;
  if (AllowedGraphHasCycle(*out, &cycle)) {
    *error = "layers.toml: the allowed-include graph has a cycle (" + cycle +
             "); break it or turn one direction into a documented "
             "[[exception]]";
    return false;
  }
  for (size_t i = 0; i < out->exceptions.size(); ++i) {
    const LayerException& exc = out->exceptions[i];
    const std::string label = "exception #" + std::to_string(i + 1);
    if (exc.from.empty() || exc.to.empty()) {
      *error = "layers.toml: " + label + " needs both from and to";
      return false;
    }
    if (exc.why.empty()) {
      *error = "layers.toml: " + label + " (" + exc.from + " -> " + exc.to +
               ") has no why; an undocumented exception is just a hole";
      return false;
    }
    if (!out->allowed.count(ModuleOf(*out, exc.from))) {
      *error = "layers.toml: " + label + " names undeclared module '" +
               ModuleOf(*out, exc.from) + "'";
      return false;
    }
    if (!out->allowed.count(ModuleOf(*out, exc.to))) {
      *error = "layers.toml: " + label + " names undeclared module '" +
               ModuleOf(*out, exc.to) + "'";
      return false;
    }
  }
  return true;
}

}  // namespace costsense::lint
