#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "internal.h"
#include "lint.h"

namespace costsense::lint {

// ---------------------------------------------------------------------------
// Shared plumbing (internal.h): path classification & suppressions
// ---------------------------------------------------------------------------

namespace internal {

std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/' || c == '\\') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

PathClass ClassifyPath(const std::string& path) {
  const std::vector<std::string> parts = SplitPath(path);
  PathClass out;
  size_t root_index = parts.size();
  for (size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] == "src") {
      out.root = PathClass::kSrc;
      root_index = i;
    } else if (parts[i] == "bench") {
      out.root = PathClass::kBench;
      root_index = i;
    } else if (parts[i] == "tests") {
      out.root = PathClass::kTests;
      root_index = i;
    }
  }
  if (root_index == parts.size()) return out;
  for (size_t i = root_index + 1; i < parts.size(); ++i) {
    if (!out.rel.empty()) out.rel.push_back('/');
    out.rel += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

namespace {
constexpr std::string_view kDirective = "costsense-lint:";
}  // namespace

Suppressions CollectSuppressions(const std::string& file,
                                 const std::vector<Comment>& comments) {
  Suppressions out;
  for (const Comment& comment : comments) {
    const size_t at = comment.text.find(kDirective);
    if (at == std::string::npos) continue;
    std::string_view rest =
        Trim(std::string_view(comment.text).substr(at + kDirective.size()));

    auto bad = [&](const std::string& why) {
      out.bad.push_back(
          {file, comment.line, comment.col, Rule::kBadSuppression, why, ""});
    };

    if (!StartsWith(rest, "allow")) {
      bad("unknown costsense-lint directive; expected "
          "allow(<rule>, <justification>)");
      continue;
    }
    rest = Trim(rest.substr(5));
    if (rest.empty() || rest.front() != '(' || rest.back() != ')') {
      bad("malformed allow(); expected allow(<rule>, <justification>)");
      continue;
    }
    rest = rest.substr(1, rest.size() - 2);

    const size_t comma = rest.find(',');
    if (comma == std::string_view::npos) {
      bad("suppression requires a justification: allow(<rule>, <why>); "
          "a bare allow(<rule>) is not accepted");
      continue;
    }
    Rule rule;
    if (!ParseRuleName(Trim(rest.substr(0, comma)), &rule)) {
      bad("unknown rule '" + std::string(Trim(rest.substr(0, comma))) +
          "' in allow(); use R1..R8 or nondeterminism/unordered/raw-output/"
          "nodiscard/getenv/intrinsics/layering/locks");
      continue;
    }
    std::string_view justification = Trim(rest.substr(comma + 1));
    // Strip optional surrounding quotes, then demand real content.
    if (justification.size() >= 2 && justification.front() == '"' &&
        justification.back() == '"') {
      justification = Trim(justification.substr(1, justification.size() - 2));
    }
    if (justification.empty()) {
      bad("suppression justification is empty; explain why the rule does "
          "not apply here");
      continue;
    }
    out.by_line[comment.line].insert(rule);
    if (!comment.trailing) out.by_line[comment.line + 1].insert(rule);
  }
  return out;
}

bool IsSuppressed(const Suppressions& sup, Rule rule, int line) {
  auto it = sup.by_line.find(line);
  return it != sup.by_line.end() && it->second.count(rule) > 0;
}

}  // namespace internal

namespace {

using internal::IsSuppressed;
using internal::PathClass;
using internal::StartsWith;
using internal::Suppressions;

bool IsHeaderPath(std::string_view path) {
  return internal::EndsWith(path, ".h") || internal::EndsWith(path, ".hpp");
}

// ---------------------------------------------------------------------------
// Token-set rules (R1, R2, R3)
// ---------------------------------------------------------------------------

const std::set<std::string>& RandomTokens() {
  static const std::set<std::string> kSet = {
      "rand",          "srand",         "rand_r",
      "random_device", "mt19937",       "mt19937_64",
      "minstd_rand",   "minstd_rand0",  "default_random_engine",
      "ranlux24",      "ranlux48",      "knuth_b",
  };
  return kSet;
}

const std::set<std::string>& TimeTokens() {
  static const std::set<std::string> kSet = {
      "time",          "system_clock", "steady_clock",
      "high_resolution_clock",         "gettimeofday",
      "clock_gettime", "timespec_get", "localtime",
      "gmtime",        "mktime",
  };
  return kSet;
}

const std::set<std::string>& UnorderedTokens() {
  static const std::set<std::string> kSet = {
      "unordered_map",
      "unordered_set",
      "unordered_multimap",
      "unordered_multiset",
  };
  return kSet;
}

const std::set<std::string>& RawOutputTokens() {
  static const std::set<std::string> kSet = {
      "cout", "printf", "puts", "putchar", "vprintf",
  };
  return kSet;
}

// `setenv` is deliberately absent: tests install environments for child
// configs, and writing the environment does not bypass the typed config.
const std::set<std::string>& GetenvTokens() {
  static const std::set<std::string> kSet = {
      "getenv",
      "secure_getenv",
  };
  return kSet;
}

/// R6: raw SIMD surface. Prefix matching catches the whole intrinsic
/// families (`_mm_*`, `_mm256_*`, `_mm512_*`, the `__m128/__m256/__m512`
/// vector types) plus the per-ISA intrinsic headers; `#include
/// <immintrin.h>` lexes its header name as an identifier token, so the
/// include line is flagged too.
bool IsIntrinsicToken(const std::string& text) {
  if (StartsWith(text, "_mm")) return true;
  if (StartsWith(text, "__m128") || StartsWith(text, "__m256") ||
      StartsWith(text, "__m512")) {
    return true;
  }
  static const std::set<std::string> kHeaders = {
      "immintrin", "emmintrin", "xmmintrin", "pmmintrin", "smmintrin",
      "tmmintrin", "nmmintrin", "wmmintrin", "avxintrin",  "avx2intrin",
      "x86intrin", "arm_neon",
  };
  return kHeaders.count(text) > 0;
}

// ---------------------------------------------------------------------------
// R4: [[nodiscard]] on Status / Result<T> declarations
// ---------------------------------------------------------------------------

const std::set<std::string>& DeclSpecifiers() {
  static const std::set<std::string> kSet = {
      "static",   "virtual", "inline", "constexpr",
      "explicit", "extern",  "friend", "typename",
  };
  return kSet;
}

/// Scans backwards from `pos` (the index of the return-type token) to
/// decide whether this is a declaration context, and whether a
/// `[[nodiscard]]` attribute already covers it. Declaration context means
/// the return type is preceded only by decl-specifiers / attributes /
/// namespace qualification until a `;`, brace, label colon, template-header
/// `>`, or file start.
struct DeclContext {
  bool is_declaration = false;
  bool has_nodiscard = false;
};

DeclContext ScanDeclContext(const std::vector<Token>& toks, size_t pos) {
  DeclContext out;
  size_t k = pos;
  while (true) {
    if (k == 0) {
      out.is_declaration = true;
      return out;
    }
    const Token& t = toks[k - 1];
    if (t.kind == Token::Kind::kIdentifier && DeclSpecifiers().count(t.text)) {
      --k;
      continue;
    }
    // `costsense::Status` — hop over the qualifying identifier.
    if (t.text == "::" && k >= 2 &&
        toks[k - 2].kind == Token::Kind::kIdentifier) {
      k -= 2;
      continue;
    }
    // Attribute block `[[ ... ]]` ends right before the type.
    if (t.text == "]" && k >= 2 && toks[k - 2].text == "]") {
      size_t open = k - 2;
      while (open >= 2 &&
             !(toks[open - 1].text == "[" && toks[open - 2].text == "[")) {
        if (toks[open - 1].text == "nodiscard") out.has_nodiscard = true;
        --open;
      }
      if (open < 2) return out;  // unbalanced; play it safe
      k = open - 2;
      continue;
    }
    if (t.text == ";" || t.text == "{" || t.text == "}" || t.text == ":" ||
        t.text == ">") {
      out.is_declaration = true;
      return out;
    }
    return out;  // `return`, `<`, `,`, `(`, `=`, identifier, ... — a use
  }
}

void CheckNodiscard(const std::string& file, const std::vector<Token>& toks,
                    const Suppressions& sup, std::vector<Finding>* findings) {
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdentifier) continue;
    const bool is_status = t.text == "Status";
    const bool is_result = t.text == "Result";
    if (!is_status && !is_result) continue;

    // Find the declared name: for Result, first skip the balanced <...>
    // template argument list (`>>` lexes as two tokens, so depth counting
    // handles nested Result<std::vector<T>> correctly).
    size_t j = i + 1;
    if (is_result) {
      if (j >= toks.size() || toks[j].text != "<") continue;
      int depth = 1;
      ++j;
      while (j < toks.size() && depth > 0) {
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">") --depth;
        ++j;
      }
      if (depth != 0) continue;
    }
    // Return-by-value only: `Status&`/`Status*` returns are not the
    // droppable-result hazard this rule is about.
    if (j >= toks.size() || toks[j].kind != Token::Kind::kIdentifier) continue;
    if (j + 1 >= toks.size() || toks[j + 1].text != "(") continue;

    const DeclContext ctx = ScanDeclContext(toks, i);
    if (!ctx.is_declaration || ctx.has_nodiscard) continue;
    if (IsSuppressed(sup, Rule::kNodiscard, t.line)) continue;
    findings->push_back(
        {file, t.line, t.col, Rule::kNodiscard,
         "declaration of '" + toks[j].text + "' returns " +
             (is_status ? "Status" : "Result<T>") +
             " but is not marked [[nodiscard]] (R4); a silently dropped "
             "status hides failures",
         ""});
  }
}

// ---------------------------------------------------------------------------
// Fingerprints & rendering helpers
// ---------------------------------------------------------------------------

uint64_t Fnv1a(std::string_view data, uint64_t h) {
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string HexDigest(uint64_t h) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[h & 0xF];
    h >>= 4;
  }
  return out;
}

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              if (a.rule != b.rule) {
                return static_cast<int>(a.rule) < static_cast<int>(b.rule);
              }
              return a.message < b.message;
            });
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

const char* RuleId(Rule rule) {
  switch (rule) {
    case Rule::kNondeterminism:
      return "R1";
    case Rule::kUnorderedContainer:
      return "R2";
    case Rule::kRawOutput:
      return "R3";
    case Rule::kNodiscard:
      return "R4";
    case Rule::kGetenv:
      return "R5";
    case Rule::kRawIntrinsics:
      return "R6";
    case Rule::kLayering:
      return "R7";
    case Rule::kLockDiscipline:
      return "R8";
    case Rule::kBadSuppression:
      return "SUP";
  }
  return "??";
}

bool ParseRuleName(std::string_view name, Rule* out) {
  if (name == "R1" || name == "r1" || name == "nondeterminism") {
    *out = Rule::kNondeterminism;
  } else if (name == "R2" || name == "r2" || name == "unordered") {
    *out = Rule::kUnorderedContainer;
  } else if (name == "R3" || name == "r3" || name == "raw-output") {
    *out = Rule::kRawOutput;
  } else if (name == "R4" || name == "r4" || name == "nodiscard") {
    *out = Rule::kNodiscard;
  } else if (name == "R5" || name == "r5" || name == "getenv") {
    *out = Rule::kGetenv;
  } else if (name == "R6" || name == "r6" || name == "intrinsics") {
    *out = Rule::kRawIntrinsics;
  } else if (name == "R7" || name == "r7" || name == "layering" ||
             name == "include-graph") {
    *out = Rule::kLayering;
  } else if (name == "R8" || name == "r8" || name == "locks" ||
             name == "lock-discipline") {
    *out = Rule::kLockDiscipline;
  } else {
    return false;
  }
  return true;
}

std::vector<Finding> AnalyzeSource(const std::string& virtual_path,
                                   std::string_view content) {
  const PathClass pc = internal::ClassifyPath(virtual_path);
  const LexedFile lexed = Lex(content);
  Suppressions sup =
      internal::CollectSuppressions(virtual_path, lexed.comments);

  std::vector<Finding> findings = std::move(sup.bad);

  const bool rng_sanctioned =
      pc.root == PathClass::kSrc && StartsWith(pc.rel, "common/rng.");
  const bool clock_sanctioned =
      pc.root == PathClass::kSrc &&
      StartsWith(pc.rel, "runtime/resilience/clock.");
  const bool unordered_strict =
      pc.root == PathClass::kSrc &&
      (StartsWith(pc.rel, "core/") || StartsWith(pc.rel, "exp/"));
  const bool raw_output_banned =
      pc.root == PathClass::kSrc && !StartsWith(pc.rel, "exp/");
  // The server tree is long-lived multi-tenant code whose only sanctioned
  // byte streams are the wire protocol and the artifact sinks; a stray
  // stdout write there is invisible to every remote client and breaks the
  // response-bytes-are-the-interface contract, so R3 is absolute.
  const bool raw_output_strict =
      pc.root == PathClass::kSrc && StartsWith(pc.rel, "serve/");
  const bool getenv_sanctioned =
      pc.root == PathClass::kSrc && StartsWith(pc.rel, "engine/config.");
  // Per-ISA code is quarantined: only src/linalg/simd* may spell raw
  // intrinsics; everything else reaches them through the dispatched
  // linalg/simd_kernels.h API.
  const bool intrinsics_sanctioned =
      pc.root == PathClass::kSrc && StartsWith(pc.rel, "linalg/simd");

  for (const Token& t : lexed.tokens) {
    if (t.kind != Token::Kind::kIdentifier) continue;

    if (!rng_sanctioned && RandomTokens().count(t.text)) {
      if (!IsSuppressed(sup, Rule::kNondeterminism, t.line)) {
        findings.push_back(
            {virtual_path, t.line, t.col, Rule::kNondeterminism,
             "'" + t.text +
                 "' is a banned randomness source outside src/common/rng.* "
                 "(R1); route randomness through costsense::Rng so runs are "
                 "replayable",
             ""});
      }
    }
    if (!clock_sanctioned && TimeTokens().count(t.text)) {
      if (!IsSuppressed(sup, Rule::kNondeterminism, t.line)) {
        findings.push_back(
            {virtual_path, t.line, t.col, Rule::kNondeterminism,
             "'" + t.text +
                 "' is a banned wall-clock read outside "
                 "src/runtime/resilience/clock.* (R1); route time through "
                 "resilience::Clock so deadlines are injectable",
             ""});
      }
    }
    if (UnorderedTokens().count(t.text)) {
      if (unordered_strict) {
        // Determinism-critical trees: the rule is absolute, a suppression
        // comment does not silence it.
        findings.push_back(
            {virtual_path, t.line, t.col, Rule::kUnorderedContainer,
             "'" + t.text +
                 "' is forbidden in src/core and src/exp (R2): these trees "
                 "feed figure/table output, where unspecified iteration "
                 "order breaks byte-identical stdout; suppressions are not "
                 "honored here — use an ordered container",
             ""});
      } else if (!IsSuppressed(sup, Rule::kUnorderedContainer, t.line)) {
        findings.push_back(
            {virtual_path, t.line, t.col, Rule::kUnorderedContainer,
             "'" + t.text +
                 "' has unspecified iteration order (R2); use an ordered "
                 "container, or suppress with a justification proving the "
                 "order never reaches logs, stats or output",
             ""});
      }
    }
    if (raw_output_banned && RawOutputTokens().count(t.text)) {
      if (raw_output_strict) {
        findings.push_back(
            {virtual_path, t.line, t.col, Rule::kRawOutput,
             "'" + t.text +
                 "' is forbidden in src/serve (R3): server code speaks only "
                 "through the wire protocol and artifact sinks, and a stray "
                 "stdout write is invisible to remote clients; suppressions "
                 "are not honored here",
             ""});
      } else if (!IsSuppressed(sup, Rule::kRawOutput, t.line)) {
        findings.push_back(
            {virtual_path, t.line, t.col, Rule::kRawOutput,
             "'" + t.text +
                 "' is raw output in library code (R3); rendering belongs "
                 "to src/exp, bench/ and the CHECK macros (fprintf(stderr) "
                 "diagnostics are fine)",
             ""});
      }
    }
    if (!intrinsics_sanctioned && IsIntrinsicToken(t.text)) {
      if (!IsSuppressed(sup, Rule::kRawIntrinsics, t.line)) {
        findings.push_back(
            {virtual_path, t.line, t.col, Rule::kRawIntrinsics,
             "'" + t.text +
                 "' is a raw SIMD intrinsic outside src/linalg/simd* (R6); "
                 "call through the dispatched kernels in "
                 "linalg/simd_kernels.h so portability and the "
                 "bit-compatibility contracts stay centralized",
             ""});
      }
    }
    if (!getenv_sanctioned && GetenvTokens().count(t.text)) {
      if (!IsSuppressed(sup, Rule::kGetenv, t.line)) {
        findings.push_back(
            {virtual_path, t.line, t.col, Rule::kGetenv,
             "'" + t.text +
                 "' reads the environment outside src/engine/config.* (R5); "
                 "every COSTSENSE_* knob flows through "
                 "engine::EngineConfig::FromEnv so a run is reproducible "
                 "from one typed config",
             ""});
      }
    }
  }

  if (IsHeaderPath(virtual_path)) {
    CheckNodiscard(virtual_path, lexed.tokens, sup, &findings);
  }
  return findings;
}

std::vector<Finding> AnalyzeRepo(const std::vector<SourceFile>& files,
                                 const LayerManifest* manifest) {
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    std::vector<Finding> per_file = AnalyzeSource(file.path, file.content);
    findings.insert(findings.end(), per_file.begin(), per_file.end());
  }
  if (manifest != nullptr) {
    std::vector<Finding> layering = CheckIncludeGraph(files, *manifest);
    findings.insert(findings.end(), layering.begin(), layering.end());
  }
  std::vector<Finding> locks = CheckLockDiscipline(files);
  findings.insert(findings.end(), locks.begin(), locks.end());
  return findings;
}

void AssignFingerprints(std::vector<Finding>* findings) {
  SortFindings(findings);
  // Ordinal per (file, rule, message) key: line/col stay out of the hash so
  // the identity survives unrelated edits, while N identical findings in
  // one file keep N distinct stable fingerprints.
  std::map<std::string, int> ordinals;
  for (Finding& f : *findings) {
    std::string key = f.file;
    key.push_back('\0');
    key += RuleId(f.rule);
    key.push_back('\0');
    key += f.message;
    const int ordinal = ordinals[key]++;
    uint64_t h = Fnv1a(key, 1469598103934665603ULL);
    h = Fnv1a(std::to_string(ordinal), h);
    f.fingerprint = HexDigest(h);
  }
}

std::string FormatFindings(std::vector<Finding> findings) {
  SortFindings(&findings);
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << f.file << ":" << f.line << ":" << f.col << ": [" << RuleId(f.rule)
       << "] " << f.message << "\n";
  }
  return os.str();
}

std::string FormatFindingsJson(std::vector<Finding> findings) {
  AssignFingerprints(&findings);
  std::ostringstream os;
  os << "{\"version\": 1, \"count\": " << findings.size()
     << ", \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "  {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": " << f.line
       << ", \"col\": " << f.col << ", \"rule\": \"" << RuleId(f.rule)
       << "\", \"fingerprint\": \"" << f.fingerprint << "\", \"message\": \""
       << JsonEscape(f.message) << "\"}";
  }
  os << (findings.empty() ? "]}\n" : "\n]}\n");
  return os.str();
}

}  // namespace costsense::lint
